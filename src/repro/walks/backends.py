"""Pluggable walk-engine backends (DESIGN.md §3).

Every consumer of batched random walks — the solvers, the Monte-Carlo
estimators, the application simulators, the CLI — goes through the
:class:`WalkEngine` interface defined here instead of calling a particular
kernel directly.  Engines are looked up by name in a process-wide registry,
so alternative execution strategies (GPU, distributed, cached) can be
slotted in by registering a new backend without touching any solver.

Four backends ship with the package, and **all four are bit-identical
under one seed**: they consume (or slice) the same logical PCG64 stream
— one batch of uniforms per hop — so any engine can replace any other
mid-experiment, mid-index, or mid-serving-epoch without changing a
single answer.  Differential tests (``tests/test_differential.py``)
enforce this across index builds, solvers, dynamic replay, and serving.

``"numpy"``
    The original gather-loop kernels, :func:`repro.walks.engine.batch_walks`
    and :func:`repro.walks.alias.weighted_batch_walks`, unchanged.  This is
    the default and the reference implementation.
``"csr"``
    A tighter CSR formulation: the adjacency is augmented once per graph
    (dangling nodes get a self-loop, realizing the DESIGN.md §5 convention
    without per-hop masking), and each hop is three allocation-free
    ``np.take`` gathers into preallocated scratch buffers — no boolean
    indexing, no copies, no bounds-check passes.  Weighted graphs reuse a
    cached :class:`~repro.walks.alias.AliasSampler` (alias tables are
    built once per graph, not once per call).
``"sharded"``
    Cuts the batch into row shards and computes each shard's *slice of
    the same logical stream* on a thread pool — workers jump to their
    rows' offset inside every per-hop uniform block with ``PCG64.advance``
    (:mod:`repro.walks.parallel`), so the assembled result equals the
    sequential backends bit for bit, independent of ``num_shards`` *and*
    worker count.  The hot kernels are numpy gathers, which release the
    GIL; one in-process address space, no serialization.
``"multiproc"``
    The same stream-sliced shards fanned out to a *process* pool: the
    augmented CSR is placed in :mod:`multiprocessing.shared_memory` once
    per graph, workers attach read-only views and ship back walk slices
    — or, on the index-build path (:meth:`WalkEngine.walk_records`),
    only the extracted first-visit records, so the walk matrices
    themselves never cross a process boundary and peak parent memory
    stays bounded.  This is the true multi-core path (no GIL); see
    DESIGN.md §11 for the layout and teardown rules.

Resolution rules (:func:`get_engine`): ``None`` means the package default
(``"numpy"``), a string is looked up in the registry, and a ready
:class:`WalkEngine` instance passes through unchanged, so every API that
takes ``engine=`` accepts all three forms.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import threading
import time
import weakref
from abc import ABC, abstractmethod
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.walks.alias import AliasSampler, weighted_batch_walks
from repro.walks.engine import batch_first_hits, batch_walks
from repro.walks.parallel import (
    SharedArrayPack,
    first_visit_records,
    run_task,
    slice_first_hits,
    slice_walks,
    slice_weighted_walks,
)
from repro.walks.rng import advance_stream, resolve_rng, stream_state

__all__ = [
    "WalkEngine",
    "NumpyWalkEngine",
    "CSRWalkEngine",
    "ShardedWalkEngine",
    "MultiprocWalkEngine",
    "DEFAULT_ENGINE",
    "available_engines",
    "get_engine",
    "register_engine",
]

DEFAULT_ENGINE = "numpy"


def _check_walk_args(
    num_nodes: int, starts: np.ndarray, length: int
) -> np.ndarray:
    """Shared argument validation, matching :mod:`repro.walks.engine`."""
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= num_nodes):
        raise ParameterError("start nodes out of range")
    return starts


class WalkEngine(ABC):
    """Backend interface: batched walks and first-hit detection.

    Concrete engines implement the two walk generators; the remaining
    methods have default implementations in terms of them, so a minimal
    backend is two methods.  All engines honor the package seed convention
    (:func:`repro.walks.rng.resolve_rng`) and the dangling-node convention
    (DESIGN.md §5: a walker on a degree-0 node stays put).
    """

    #: Registry name; set by subclasses.
    name: str = "abstract"

    @abstractmethod
    def batch_walks(
        self,
        graph: Graph,
        starts: "Sequence[int] | np.ndarray",
        length: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Unweighted L-length walks for a batch of starts, ``(B, L+1)``."""

    @abstractmethod
    def weighted_batch_walks(
        self,
        graph: WeightedDiGraph,
        starts: "Sequence[int] | np.ndarray",
        length: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Weight-proportional walks on a directed graph, ``(B, L+1)``."""

    # ------------------------------------------------------------------
    def run_walks(
        self,
        graph: "Graph | WeightedDiGraph",
        starts: "Sequence[int] | np.ndarray",
        length: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Dispatch on the graph flavor (the simulators' entry point)."""
        if isinstance(graph, WeightedDiGraph):
            return self.weighted_batch_walks(graph, starts, length, seed=seed)
        return self.batch_walks(graph, starts, length, seed=seed)

    def batch_first_hits(
        self, walks: np.ndarray, target_mask: np.ndarray
    ) -> np.ndarray:
        """First-hit hop per walk row (``-1`` on miss)."""
        return batch_first_hits(walks, target_mask)

    def walk_first_hits(
        self,
        graph: "Graph | WeightedDiGraph",
        starts: "Sequence[int] | np.ndarray",
        length: int,
        target_mask: np.ndarray,
        seed: "int | np.random.Generator | None" = None,
    ) -> np.ndarray:
        """Generate walks and return only their first-hit hops.

        Backends may fuse the two passes (the CSR engine never materializes
        the walk matrix); the default composes :meth:`run_walks` with
        :meth:`batch_first_hits`.  Results are identical either way.
        """
        walks = self.run_walks(graph, starts, length, seed=seed)
        return self.batch_first_hits(walks, target_mask)

    def iter_walk_records(
        self,
        graph: Graph,
        starts: "Sequence[int] | np.ndarray",
        length: int,
        states: np.ndarray,
        seed: "int | np.random.Generator | None" = None,
        chunk_rows: int = 1 << 19,
    ):
        """Per-chunk first-visit ``(hit, state, hop)`` record arrays.

        The streaming spelling of :meth:`walk_records`: yields one record
        triple per ``chunk_rows``-row chunk of the batch, so a consumer
        (the out-of-core builder, :mod:`repro.walks.build`) can reduce
        each chunk before the next one's walks exist — peak memory is one
        chunk's walks plus whatever the consumer retains.  The chunking
        is part of the RNG contract — chunk ``c`` consumes its
        ``len(chunk) * length`` uniforms before chunk ``c + 1`` begins —
        so every backend yields the same per-chunk record *sets* for the
        same ``(seed, chunk_rows)``.  Arguments are validated eagerly
        (before the first chunk is computed); the caller's generator is
        only guaranteed to be positioned past the whole batch once the
        iterator is exhausted.
        """
        starts = _check_walk_args(graph.num_nodes, starts, length)
        states = np.asarray(states, dtype=np.int64)
        if states.size != starts.size:
            raise ParameterError("states must align with starts")
        if chunk_rows < 1:
            raise ParameterError("chunk_rows must be >= 1")
        rng = resolve_rng(seed)
        return self._iter_records_sequential(
            graph, starts, length, states, rng, chunk_rows
        )

    def _iter_records_sequential(
        self, graph, starts, length, states, rng, chunk_rows
    ):
        for lo in range(0, starts.size, chunk_rows):
            rows = starts[lo : lo + chunk_rows]
            walks = self.batch_walks(graph, rows, length, seed=rng)
            yield first_visit_records(walks, states[lo : lo + chunk_rows])

    def walk_records(
        self,
        graph: Graph,
        starts: "Sequence[int] | np.ndarray",
        length: int,
        states: np.ndarray,
        seed: "int | np.random.Generator | None" = None,
        chunk_rows: int = 1 << 19,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """First-visit ``(hit, state, hop)`` record arrays for a batch.

        The index builders' entry point (Algorithm 3's extraction):
        ``states[b]`` is row ``b``'s flattened ``D`` index, carried into
        the records.  Concatenates :meth:`iter_walk_records` — same
        chunking, same RNG contract — so every backend produces the same
        record *set* for the same ``(seed, chunk_rows)``; record order is
        a backend detail that :meth:`FlatWalkIndex._from_records`
        canonicalizes away.  The default generates walks chunk-by-chunk
        via :meth:`batch_walks` and extracts in-process; the multiproc
        backend yields chunks whose records were extracted inside its
        workers.
        """
        hit_parts: list[np.ndarray] = []
        state_parts: list[np.ndarray] = []
        hop_parts: list[np.ndarray] = []
        for hits, row_states, hops in self.iter_walk_records(
            graph, starts, length, states, seed=seed, chunk_rows=chunk_rows
        ):
            if hits.size:
                hit_parts.append(hits)
                state_parts.append(row_states)
                hop_parts.append(hops)
        return _concat_records(hit_parts, state_parts, hop_parts)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def _concat_records(
    hit_parts: list, state_parts: list, hop_parts: list
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    if not hit_parts:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(hit_parts),
        np.concatenate(state_parts),
        np.concatenate(hop_parts),
    )


class NumpyWalkEngine(WalkEngine):
    """The original per-hop gather loop — default, reference backend."""

    name = "numpy"

    def batch_walks(self, graph, starts, length, seed=None):
        return batch_walks(graph, starts, length, seed=seed)

    def weighted_batch_walks(self, graph, starts, length, seed=None):
        return weighted_batch_walks(graph, starts, length, seed=seed)


# ----------------------------------------------------------------------
# CSR backend
# ----------------------------------------------------------------------
class _CSRPlan:
    """Per-graph precomputation for the CSR backend (unweighted).

    The adjacency is augmented so every dangling node carries one
    self-loop.  A dangling walker then "moves" along its self-loop —
    landing where it already is — which realizes the stay-put convention
    (DESIGN.md §5) without any per-hop mask, while consuming exactly the
    same uniform draw the numpy backend burns on it.
    """

    __slots__ = ("indptr", "indices", "degrees_f64")

    def __init__(self, graph: Graph):
        degrees = graph.degrees
        dangling = np.flatnonzero(degrees == 0)
        if dangling.size == 0:
            self.indptr = graph.indptr
            self.indices = graph.indices
            self.degrees_f64 = degrees.astype(np.float64)
            return
        n = graph.num_nodes
        aug_deg = degrees.copy()
        aug_deg[dangling] = 1
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(aug_deg, out=indptr[1:])
        indices = np.empty(int(indptr[-1]), dtype=np.int32)
        src_rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        within = np.arange(graph.indices.size, dtype=np.int64) - graph.indptr[src_rows]
        indices[indptr[src_rows] + within] = graph.indices
        indices[indptr[dangling]] = dangling
        self.indptr = indptr
        self.indices = indices
        self.degrees_f64 = aug_deg.astype(np.float64)


class _WeightedPlan:
    """Per-graph precomputation for the CSR backend (weighted)."""

    __slots__ = ("sampler", "indices", "out_degrees_f64", "has_dangling")

    def __init__(self, graph: WeightedDiGraph):
        self.sampler = AliasSampler(graph)
        self.indices = graph.indices.astype(np.int64)
        out_deg = graph.out_degrees
        self.out_degrees_f64 = out_deg.astype(np.float64)
        self.has_dangling = bool((out_deg == 0).any())


class _PlanCache:
    """Bounded FIFO of per-graph plans, keyed by object identity.

    The cache keeps a strong reference to each graph, so an ``id()`` can
    never be recycled while its plan is alive; graphs are immutable, so a
    cached plan never goes stale.  Concurrent builds of the same plan (the
    sharded engine's thread pool) are benign: both threads compute the same
    immutable arrays and one wins the dict slot.
    """

    def __init__(self, maxsize: int = 8):
        self._maxsize = maxsize
        self._data: "dict[int, tuple[object, object]]" = {}

    def get(self, graph: object, build: Callable[[object], object]) -> object:
        key = id(graph)
        hit = self._data.get(key)
        if hit is not None and hit[0] is graph:
            return hit[1]
        plan = build(graph)
        self._data[key] = (graph, plan)
        while len(self._data) > self._maxsize:
            # pop(…, None): two pool threads may race to evict the same
            # oldest entry; losing the race must not raise.
            self._data.pop(next(iter(self._data)), None)
        return plan


class CSRWalkEngine(WalkEngine):
    """Vectorized CSR backend: block uniforms, three gathers per hop.

    Bit-identical to :class:`NumpyWalkEngine` under the same seed (the
    parity tests in ``tests/test_walk_backends.py`` assert it), roughly
    2-3x faster on batched unweighted walks, and much faster on repeated
    weighted calls because alias tables are built once per graph.
    """

    name = "csr"

    def __init__(self, cache_size: int = 8):
        self._plans = _PlanCache(cache_size)
        self._weighted_plans = _PlanCache(cache_size)
        # Hop-loop scratch, reused across calls of the same batch size so
        # steady-state walking performs zero allocations.  Thread-local
        # because the sharded engine drives one CSR engine from a pool.
        self._scratch = threading.local()

    # ------------------------------------------------------------------
    def _plan(self, graph: Graph) -> _CSRPlan:
        return self._plans.get(graph, _CSRPlan)

    def _weighted_plan(self, graph: WeightedDiGraph) -> _WeightedPlan:
        return self._weighted_plans.get(graph, _WeightedPlan)

    def _buffers(self, batch: int) -> "tuple[np.ndarray, ...]":
        """Per-thread ``(u, deg, off, pos, current)`` scratch buffers."""
        cached = getattr(self._scratch, "buffers", None)
        if cached is None or cached[0].size != batch:
            cached = (
                np.empty(batch, dtype=np.float64),
                np.empty(batch, dtype=np.float64),
                np.empty(batch, dtype=np.int64),
                np.empty(batch, dtype=np.int64),
                np.empty(batch, dtype=np.int64),
            )
            self._scratch.buffers = cached
        return cached

    # ------------------------------------------------------------------
    def batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        batch = starts.size
        walks = np.empty((length + 1, batch), dtype=np.int32)
        walks[0] = starts
        if length and batch:
            plan = self._plan(graph)
            indptr, indices, degf = plan.indptr, plan.indices, plan.degrees_f64
            # Per-hop scratch buffers are allocated once; every hop is a
            # fixed sequence of allocation-free kernels.  ``mode="clip"``
            # skips numpy's bounds-check pass — positions are valid by
            # construction.  The per-hop ``rng.random`` calls consume the
            # PCG64 stream exactly like the numpy backend's, which is what
            # makes the two backends bit-identical under one seed.
            u, deg, off, pos, current = self._buffers(batch)
            np.copyto(current, starts)  # int64: take() needs intp indices
            for t in range(1, length + 1):
                rng.random(out=u)
                np.take(degf, current, out=deg, mode="clip")
                np.multiply(u, deg, out=u)
                np.copyto(off, u, casting="unsafe")  # trunc == floor: u >= 0
                np.take(indptr, current, out=pos, mode="clip")
                pos += off
                np.take(indices, pos, out=walks[t], mode="clip")
                np.copyto(current, walks[t])
        # (B, L+1) transposed view: column-major hop access, which is how
        # every consumer reads walks, stays contiguous.
        return walks.T

    def weighted_batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        batch = starts.size
        plan = self._weighted_plan(graph)
        if plan.has_dangling or not (length and batch):
            # The masked per-hop path of AliasSampler.step draws uniforms
            # for movable walkers only; reuse it so the RNG stream matches
            # the numpy backend exactly.  The cached sampler still skips
            # the per-call alias-table rebuild.
            return weighted_batch_walks(
                graph, starts, length, seed=rng, sampler=plan.sampler
            )
        sampler = plan.sampler
        indptr, indices = graph.indptr, plan.indices
        outdegf = plan.out_degrees_f64
        prob, alias = sampler.prob, sampler.alias
        walks = np.empty((length + 1, batch), dtype=np.int32)
        walks[0] = starts
        current = starts
        for t in range(1, length + 1):
            # Draw order (slots, then coins) matches AliasSampler.step so
            # the stream stays aligned with the numpy backend.
            u_slot = rng.random(batch)
            u_coin = rng.random(batch)
            slots = indptr[current] + (u_slot * outdegf[current]).astype(np.int64)
            chosen = np.where(u_coin >= prob[slots], alias[slots], slots)
            current = indices[chosen]
            walks[t] = current
        return walks.T

    def walk_first_hits(self, graph, starts, length, target_mask, seed=None):
        if isinstance(graph, WeightedDiGraph):
            return super().walk_first_hits(
                graph, starts, length, target_mask, seed=seed
            )
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        batch = starts.size
        first = np.where(target_mask[starts], 0, -1).astype(np.int64)
        if length and batch:
            plan = self._plan(graph)
            indptr, indices, degf = plan.indptr, plan.indices, plan.degrees_f64
            u, deg, off, pos, current = self._buffers(batch)
            nxt = np.empty(batch, dtype=np.int32)
            np.copyto(current, starts)
            for t in range(1, length + 1):
                rng.random(out=u)
                np.take(degf, current, out=deg, mode="clip")
                np.multiply(u, deg, out=u)
                np.copyto(off, u, casting="unsafe")
                np.take(indptr, current, out=pos, mode="clip")
                pos += off
                np.take(indices, pos, out=nxt, mode="clip")
                np.copyto(current, nxt)
                newly = (first < 0) & target_mask[current]
                first[newly] = t
        return first


# ----------------------------------------------------------------------
# Shard partitioning (shared by the sharded and multiproc backends)
# ----------------------------------------------------------------------
def _shard_bounds(total: int, shards: int) -> "list[tuple[int, int]]":
    """Contiguous ``[lo, hi)`` row ranges, ``np.array_split`` sizing."""
    shards = max(1, min(shards, total))
    base, rem = divmod(total, shards)
    bounds = []
    lo = 0
    for k in range(shards):
        hi = lo + base + (1 if k < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# ----------------------------------------------------------------------
# Sharded backend
# ----------------------------------------------------------------------
class ShardedWalkEngine(WalkEngine):
    """Row shards of one logical stream on a thread pool.

    The batch is cut into ``num_shards`` contiguous shards and each shard
    computes its *slice of the same PCG64 stream* the sequential backends
    consume (:func:`repro.walks.parallel.slice_walks`): a worker jumps to
    its rows' offset inside every per-hop uniform block with ``advance``
    and draws only its rows.  The assembled output is therefore
    **bit-identical to the numpy/csr backends under the same seed** —
    independent of ``num_shards``, worker count, and scheduling — and the
    caller's generator is advanced past exactly the draws the batch
    consumed, so a stream threaded through several calls stays aligned.

    Two cases cannot be sliced and fall back to one sequential call on
    the base engine (still bit-identical, just not parallel): seeds whose
    bit generator lacks 64-bit-draw ``advance`` semantics (anything but
    PCG64/PCG64DXSM), and weighted graphs with dangling rows, whose
    masked sampling consumes the stream data-dependently.
    """

    name = "sharded"

    def __init__(
        self,
        base: "str | WalkEngine" = "csr",
        num_shards: int = 8,
        max_workers: "int | None" = None,
    ):
        if num_shards < 1:
            raise ParameterError("num_shards must be >= 1")
        self._base_spec = base
        self.num_shards = num_shards
        self.max_workers = max_workers

    @property
    def base(self) -> WalkEngine:
        """The sequential engine used when a call cannot be sliced."""
        return get_engine(self._base_spec)

    def _csr(self) -> CSRWalkEngine:
        """The plan provider (the base engine when it is a CSR engine, so
        plans are shared with direct csr calls; a registry csr otherwise)."""
        base = self.base
        if isinstance(base, CSRWalkEngine):
            return base
        return get_engine("csr")

    # ------------------------------------------------------------------
    def _map_shards(self, run_shard, bounds) -> list:
        if obs.enabled():
            inner = run_shard

            def run_shard(lo, hi):
                obs.inc(
                    "walk_shard_rows_total", hi - lo,
                    help="Walk rows computed by shard workers.",
                    mode="threaded",
                )
                obs.inc(
                    "walk_shards_total",
                    help="Shard tasks executed.",
                    mode="threaded",
                )
                return inner(lo, hi)
        if len(bounds) == 1:
            return [run_shard(*bounds[0])]
        with concurrent.futures.ThreadPoolExecutor(
            max_workers=self.max_workers
        ) as pool:
            return list(pool.map(lambda b: run_shard(*b), bounds))

    def batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        state = stream_state(rng)
        total = starts.size
        if state is None or not (length and total):
            return self.base.batch_walks(graph, starts, length, seed=rng)
        plan = self._csr()._plan(graph)
        parts = self._map_shards(
            lambda lo, hi: slice_walks(
                plan.indptr, plan.indices, plan.degrees_f64,
                starts[lo:hi], length, state, lo, total,
            ),
            _shard_bounds(total, self.num_shards),
        )
        advance_stream(rng, total * length)
        return np.vstack(parts)

    def weighted_batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        state = stream_state(rng)
        total = starts.size
        plan = self._csr()._weighted_plan(graph)
        if state is None or plan.has_dangling or not (length and total):
            # The masked AliasSampler path (data-dependent draws) and
            # non-sliceable generators: one sequential call, same stream.
            return weighted_batch_walks(
                graph, starts, length, seed=rng, sampler=plan.sampler
            )
        sampler = plan.sampler
        parts = self._map_shards(
            lambda lo, hi: slice_weighted_walks(
                graph.indptr, plan.indices, plan.out_degrees_f64,
                sampler.prob, sampler.alias,
                starts[lo:hi], length, state, lo, total,
            ),
            _shard_bounds(total, self.num_shards),
        )
        advance_stream(rng, 2 * total * length)
        return np.vstack(parts)

    def walk_first_hits(self, graph, starts, length, target_mask, seed=None):
        if isinstance(graph, WeightedDiGraph):
            return super().walk_first_hits(
                graph, starts, length, target_mask, seed=seed
            )
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        state = stream_state(rng)
        total = starts.size
        if state is None or not (length and total):
            return self.base.walk_first_hits(
                graph, starts, length, target_mask, seed=rng
            )
        plan = self._csr()._plan(graph)
        mask = np.asarray(target_mask, dtype=bool)
        parts = self._map_shards(
            lambda lo, hi: slice_first_hits(
                plan.indptr, plan.indices, plan.degrees_f64,
                starts[lo:hi], length, mask, state, lo, total,
            ),
            _shard_bounds(total, self.num_shards),
        )
        advance_stream(rng, total * length)
        return np.concatenate(parts)


# ----------------------------------------------------------------------
# Multiproc backend
# ----------------------------------------------------------------------
def _release_multiproc_resources(resources: dict) -> None:
    """Tear down a multiproc engine's pool and shared-memory segments.

    Module-level so a :func:`weakref.finalize` can run it at engine
    collection or interpreter exit without keeping the engine alive.
    Idempotent: every path that can leave the engine in a doubtful state
    (worker crash, ``KeyboardInterrupt`` mid-shard, pool breakage) calls
    it, so segments are unlinked exactly once and never leaked.
    """
    pool = resources.pop("pool", None)
    if pool is not None:
        pool.shutdown(wait=False, cancel_futures=True)
    for key in ("packs", "weighted_packs"):
        packs = resources.get(key, {})
        while packs:
            _, (_graph, pack) = packs.popitem()
            pack.close()


class MultiprocWalkEngine(WalkEngine):
    """Stream-sliced shards on a process pool over shared-memory CSR.

    The true multi-core backend: the augmented CSR arrays (and, for
    weighted graphs, the alias tables) are copied into
    :mod:`multiprocessing.shared_memory` once per graph and cached;
    worker processes attach read-only views and run the same slice
    kernels as the sharded backend, so the output is **bit-identical to
    every other backend under one seed** while the hop loops run on as
    many cores as the pool has workers, with no GIL in sight.

    Resource discipline (DESIGN.md §11):

    * The process pool is created lazily and persists across calls (spawn
      context — safe to combine with the serving layer's threads).
    * Per-graph segments live in a small FIFO cache; per-call segments
      (the first-hit target mask) are unlinked in a ``finally``.
    * Any exception escaping a fan-out — a crashed worker, an interrupt
      mid-shard, a broken pool — tears down the pool *and unlinks every
      cached segment* before re-raising; the next call starts fresh.  A
      finalizer covers engine collection and interpreter exit.  Workers
      never unlink anything, so a dying worker cannot orphan a segment.
    * The caller's generator is advanced only after a fan-out completes;
      a failed call leaves the stream position untouched, so the caller
      can retry (or fall back) without losing reproducibility.

    Calls below ``min_parallel_rows`` (and seeds whose bit generator is
    not sliceable, and weighted graphs with dangling rows) run
    sequentially on the csr backend instead — same answer, no IPC tax on
    small batches.

    On the index-build path (:meth:`walk_records`) workers extract
    first-visit records shard-locally and stream back only the record
    arrays — the walk matrices never cross the process boundary, which
    is what keeps peak parent memory bounded on million-node builds.
    """

    name = "multiproc"

    def __init__(
        self,
        num_procs: "int | None" = None,
        shard_rows: int = 1 << 16,
        min_parallel_rows: int = 8192,
        cache_size: int = 4,
        mp_context: str = "spawn",
    ):
        if num_procs is not None and num_procs < 1:
            raise ParameterError("num_procs must be >= 1")
        if shard_rows < 1:
            raise ParameterError("shard_rows must be >= 1")
        if cache_size < 1:
            raise ParameterError("cache_size must be >= 1")
        self.num_procs = (
            int(num_procs)
            if num_procs is not None
            else max(1, min(os.cpu_count() or 1, 8))
        )
        self.shard_rows = int(shard_rows)
        self.min_parallel_rows = int(min_parallel_rows)
        self._cache_size = int(cache_size)
        self._mp_context = mp_context
        self._resources: dict = {"pool": None, "packs": {}, "weighted_packs": {}}
        self._finalizer = weakref.finalize(
            self, _release_multiproc_resources, self._resources
        )

    # ------------------------------------------------------------------
    # Resource management
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the pool down and unlink every shared-memory segment.

        Safe to call repeatedly; the engine remains usable — the next
        call simply recreates the pool and republishes the segments.
        """
        _release_multiproc_resources(self._resources)
        self._resources["pool"] = None

    def _ensure_pool(self):
        pool = self._resources.get("pool")
        if pool is None:
            pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.num_procs,
                mp_context=multiprocessing.get_context(self._mp_context),
            )
            self._resources["pool"] = pool
        return pool

    def _pack_for(self, graph, key: str, build) -> SharedArrayPack:
        """The cached shared-memory pack for ``graph`` (FIFO-bounded)."""
        packs = self._resources[key]
        hit = packs.get(id(graph))
        if hit is not None and hit[0] is graph:
            return hit[1]
        pack = SharedArrayPack(build())
        packs[id(graph)] = (graph, pack)
        while len(packs) > self._cache_size:
            oldest = next(iter(packs))
            if oldest == id(graph):
                break
            _, old_pack = packs.pop(oldest)
            old_pack.close()
        return pack

    def _graph_pack(self, graph: Graph) -> SharedArrayPack:
        plan = get_engine("csr")._plan(graph)
        return self._pack_for(
            graph, "packs",
            lambda: {
                "indptr": plan.indptr,
                "indices": plan.indices,
                "degrees_f64": plan.degrees_f64,
            },
        )

    def _weighted_pack(self, graph: WeightedDiGraph, plan) -> SharedArrayPack:
        return self._pack_for(
            graph, "weighted_packs",
            lambda: {
                "indptr": graph.indptr,
                "indices": plan.indices,
                "out_degrees_f64": plan.out_degrees_f64,
                "prob": plan.sampler.prob,
                "alias": plan.sampler.alias,
            },
        )

    # ------------------------------------------------------------------
    # Fan-out core
    # ------------------------------------------------------------------
    def _scatter(self, tasks: list, collect) -> None:
        """Run ``tasks`` on the pool, streaming results to ``collect``.

        At most ``2 * num_procs`` tasks are in flight, so results stream
        back in bounded memory regardless of the batch size.  Any
        exception — worker crash, interrupt, broken pool — releases the
        pool and unlinks every segment before re-raising (the
        can't-leak-on-crash contract the regression tests pin down).

        With telemetry enabled, tasks carry ``task["telemetry"]`` so
        workers record shard-level metrics into private registries and
        return them alongside the payload (``walks/parallel.py``); this
        loop absorbs each snapshot and times every submit→result round
        trip.  The task dicts, stream slicing, and payloads are unchanged
        either way — results stay bit-identical.
        """
        telemetry = obs.enabled()
        submitted: dict = {}
        try:
            pool = self._ensure_pool()
            window = 2 * self.num_procs
            pending = {}
            queued = iter(enumerate(tasks))
            exhausted = False
            while pending or not exhausted:
                while not exhausted and len(pending) < window:
                    nxt = next(queued, None)
                    if nxt is None:
                        exhausted = True
                        break
                    index, task = nxt
                    if telemetry:
                        task["telemetry"] = True
                    future = pool.submit(run_task, task)
                    pending[future] = index
                    if telemetry:
                        submitted[future] = time.perf_counter()
                if not pending:
                    break
                done, _ = concurrent.futures.wait(
                    pending, return_when=concurrent.futures.FIRST_COMPLETED
                )
                for future in done:
                    result = future.result()
                    if telemetry:
                        obs.observe(
                            "walk_worker_roundtrip_seconds",
                            time.perf_counter() - submitted.pop(future),
                            help="Multiproc shard submit-to-result round trip.",
                        )
                    # The records payload is also a 3-tuple (of arrays),
                    # so the sentinel test must check the type first.
                    if (
                        isinstance(result, tuple)
                        and len(result) == 3
                        and isinstance(result[0], str)
                        and result[0] == "__obs__"
                    ):
                        obs.absorb(result[2])
                        result = result[1]
                    collect(pending.pop(future), result)
        except BaseException:
            self.close()
            raise

    def _sliceable(self, rng, total: int, length: int):
        """The stream state when this call should use the pool, else None."""
        if length == 0 or total < max(1, self.min_parallel_rows):
            return None
        return stream_state(rng)

    # ------------------------------------------------------------------
    # WalkEngine interface
    # ------------------------------------------------------------------
    def batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        state = self._sliceable(rng, starts.size, length)
        if state is None:
            return get_engine("csr").batch_walks(graph, starts, length, seed=rng)
        total = starts.size
        specs = self._graph_pack(graph).specs
        walks = np.empty((total, length + 1), dtype=np.int32)
        bounds = _shard_bounds(total, -(-total // self.shard_rows))
        tasks = [
            {
                "mode": "walks", "specs": specs, "starts": starts[lo:hi],
                "length": length, "state": state, "lo": lo, "total": total,
            }
            for lo, hi in bounds
        ]
        self._scatter(
            tasks, lambda i, part: walks.__setitem__(
                slice(bounds[i][0], bounds[i][1]), part
            )
        )
        advance_stream(rng, total * length)
        return walks

    def weighted_batch_walks(self, graph, starts, length, seed=None):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        plan = get_engine("csr")._weighted_plan(graph)
        state = self._sliceable(rng, starts.size, length)
        if state is None or plan.has_dangling:
            return weighted_batch_walks(
                graph, starts, length, seed=rng, sampler=plan.sampler
            )
        total = starts.size
        specs = self._weighted_pack(graph, plan).specs
        walks = np.empty((total, length + 1), dtype=np.int32)
        bounds = _shard_bounds(total, -(-total // self.shard_rows))
        tasks = [
            {
                "mode": "weighted", "specs": specs, "starts": starts[lo:hi],
                "length": length, "state": state, "lo": lo, "total": total,
            }
            for lo, hi in bounds
        ]
        self._scatter(
            tasks, lambda i, part: walks.__setitem__(
                slice(bounds[i][0], bounds[i][1]), part
            )
        )
        advance_stream(rng, 2 * total * length)
        return walks

    def walk_first_hits(self, graph, starts, length, target_mask, seed=None):
        if isinstance(graph, WeightedDiGraph):
            return super().walk_first_hits(
                graph, starts, length, target_mask, seed=seed
            )
        starts = _check_walk_args(graph.num_nodes, starts, length)
        rng = resolve_rng(seed)
        state = self._sliceable(rng, starts.size, length)
        if state is None:
            return get_engine("csr").walk_first_hits(
                graph, starts, length, target_mask, seed=rng
            )
        total = starts.size
        specs = self._graph_pack(graph).specs
        mask = np.ascontiguousarray(
            np.asarray(target_mask, dtype=bool).view(np.uint8)
        )
        mask_pack = SharedArrayPack({"mask": mask})
        try:
            hits = np.empty(total, dtype=np.int64)
            bounds = _shard_bounds(total, -(-total // self.shard_rows))
            tasks = [
                {
                    "mode": "first_hits", "specs": specs,
                    "mask_spec": mask_pack.specs["mask"],
                    "starts": starts[lo:hi], "length": length,
                    "state": state, "lo": lo, "total": total,
                }
                for lo, hi in bounds
            ]
            self._scatter(
                tasks, lambda i, part: hits.__setitem__(
                    slice(bounds[i][0], bounds[i][1]), part
                )
            )
        finally:
            mask_pack.close()
        advance_stream(rng, total * length)
        return hits

    def iter_walk_records(
        self, graph, starts, length, states, seed=None, chunk_rows=1 << 19
    ):
        starts = _check_walk_args(graph.num_nodes, starts, length)
        states = np.asarray(states, dtype=np.int64)
        if states.size != starts.size:
            raise ParameterError("states must align with starts")
        if chunk_rows < 1:
            raise ParameterError("chunk_rows must be >= 1")
        rng = resolve_rng(seed)
        state = self._sliceable(rng, starts.size, length)
        if state is None:
            return self._iter_records_sequential(
                graph, starts, length, states, rng, chunk_rows
            )
        return self._iter_records_parallel(
            graph, starts, length, states, rng, state, chunk_rows
        )

    def _iter_records_parallel(
        self, graph, starts, length, states, rng, state, chunk_rows
    ):
        """One pool fan-out per chunk, records extracted in the workers.

        Stream offsets honor the chunk contract: chunk c's draws occupy
        [offset_c, offset_c + len(chunk) * L); shards subdivide rows
        *within* a chunk, slicing that chunk's segment of the stream.
        The caller's generator is advanced only after the last chunk is
        consumed — an abandoned or failed iteration leaves the stream
        position untouched, same as a failed :meth:`batch_walks` call.
        """
        specs = self._graph_pack(graph).specs
        stream_offset = 0
        for chunk_lo in range(0, starts.size, chunk_rows):
            chunk_size = min(chunk_rows, starts.size - chunk_lo)
            tasks = [
                {
                    "mode": "records", "specs": specs,
                    "starts": starts[chunk_lo + lo : chunk_lo + hi],
                    "states": states[chunk_lo + lo : chunk_lo + hi],
                    "length": length, "state": state,
                    "lo": stream_offset + lo, "total": chunk_size,
                }
                for lo, hi in _shard_bounds(
                    chunk_size, -(-chunk_size // self.shard_rows)
                )
            ]
            parts: list = [None] * len(tasks)
            self._scatter(tasks, parts.__setitem__)
            stream_offset += chunk_size * length
            yield _concat_records(
                [p[0] for p in parts if p[0].size],
                [p[1] for p in parts if p[1].size],
                [p[2] for p in parts if p[2].size],
            )
        advance_stream(rng, starts.size * length)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MultiprocWalkEngine(num_procs={self.num_procs}, "
            f"shard_rows={self.shard_rows})"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_FACTORIES: "dict[str, Callable[[], WalkEngine]]" = {}
_INSTANCES: "dict[str, WalkEngine]" = {}


def register_engine(
    name: str, factory: Callable[[], WalkEngine], replace: bool = False
) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called lazily, once, on first :func:`get_engine` lookup.
    Re-registering an existing name requires ``replace=True`` (and drops
    any cached instance), so a typo cannot silently shadow a builtin.
    """
    if not name or not isinstance(name, str):
        raise ParameterError("engine name must be a non-empty string")
    if name in _FACTORIES and not replace:
        raise ParameterError(
            f"engine {name!r} is already registered (pass replace=True)"
        )
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_engines() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def get_engine(engine: "str | WalkEngine | None" = None) -> WalkEngine:
    """Resolve an ``engine=`` argument to a :class:`WalkEngine` instance.

    ``None`` -> the default backend (``"numpy"``); a string -> the shared
    instance registered under that name; an instance -> itself.
    """
    if engine is None:
        engine = DEFAULT_ENGINE
    if isinstance(engine, WalkEngine):
        return engine
    if not isinstance(engine, str):
        raise ParameterError(
            f"cannot interpret {type(engine).__name__} as a walk engine"
        )
    try:
        instance = _INSTANCES.get(engine)
        if instance is None:
            instance = _INSTANCES[engine] = _FACTORIES[engine]()
        return instance
    except KeyError:
        raise ParameterError(
            f"unknown walk engine {engine!r}; available: "
            f"{', '.join(available_engines())}"
        ) from None


register_engine("numpy", NumpyWalkEngine)
register_engine("csr", CSRWalkEngine)
register_engine("sharded", ShardedWalkEngine)
register_engine("multiproc", MultiprocWalkEngine)
