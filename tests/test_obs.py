"""Tests for the unified telemetry subsystem (repro.obs, DESIGN.md §14).

Fast lane: registry semantics (monotonic counters, labeled series,
fixed-bucket histograms), snapshot merge/absorb exactness (the multiproc
worker protocol), Prometheus text validity, span nesting/self-time and
Chrome ``trace_event`` export, the zero-cost disabled defaults, an exact
thread-concurrency check, the cross-process merge over the real
multiproc walk engine (shard metric sums must equal single-process
counts bit for bit), the ``/metrics`` endpoint, and the ``--telemetry``/
``--trace-out``/``--stats-window``/``stats`` CLI surface.

Slow lane: a hypothesis property that no concurrent increment is ever
lost or double-counted across an arbitrary op schedule.
"""

import json
import math
import threading

import numpy as np
import pytest

from repro import obs
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph
from repro.obs.exposition import render_prometheus
from repro.obs.registry import (
    COUNT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.tracing import NULL_TRACER, SpanTracer


@pytest.fixture(autouse=True)
def _obs_off():
    """Every test leaves the process-wide switch back at the default."""
    yield
    obs.disable()


# ----------------------------------------------------------------------
# Registry semantics.
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        counter = reg.counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ParameterError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("in_flight")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_counts_and_sum(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency_seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        state = hist.state()
        assert state.bounds == (0.1, 1.0)
        # Non-cumulative per-bucket counts plus the +Inf slot.
        assert tuple(state.counts) == (1, 2, 1)
        assert state.count == 4
        assert state.sum == pytest.approx(6.05)

    def test_labels_create_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", {"kind": "a"}).inc()
        reg.counter("hits_total", {"kind": "b"}).inc(2)
        # Same (name, labels) returns the same underlying metric.
        reg.counter("hits_total", {"kind": "a"}).inc()
        snap = reg.snapshot()
        values = {
            labels: value
            for (name, labels), value in snap.counters.items()
            if name == "hits_total"
        }
        assert values == {(("kind", "a"),): 2, (("kind", "b"),): 2}

    def test_invalid_names_raise(self):
        reg = MetricsRegistry()
        with pytest.raises(ParameterError):
            reg.counter("2bad")
        with pytest.raises(ParameterError):
            reg.counter("fine_total", {"2bad": "x"})

    def test_snapshot_roundtrip_and_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 3)):
            reg.counter("runs_total").inc(n)
            reg.gauge("epoch").set(n)
            hist = reg.histogram("secs", buckets=(1.0,))
            hist.observe(0.5)
        merged = a.snapshot().merge(b.snapshot())
        assert merged.counters[("runs_total", ())] == 5
        assert merged.gauges[("epoch", ())] == 3  # last write wins
        state = merged.histograms[("secs", ())]
        assert state.count == 2 and tuple(state.counts) == (2, 0)
        # JSON-safe dict round trip is exact.
        restored = MetricsSnapshot.from_dict(
            json.loads(json.dumps(merged.to_dict()))
        )
        assert restored.counters == merged.counters
        assert restored.gauges == merged.gauges
        assert restored.histograms == merged.histograms

    def test_absorb_sums_worker_snapshot(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.counter("rows_total").inc(10)
        worker.counter("rows_total").inc(7)
        worker.histogram("secs", buckets=(1.0,)).observe(2.0)
        parent.absorb(worker.snapshot().to_dict())
        snap = parent.snapshot()
        assert snap.counters[("rows_total", ())] == 17
        assert snap.histograms[("secs", ())].count == 1

    def test_absorb_rejects_bucket_mismatch(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("secs", buckets=(1.0,)).observe(0.5)
        worker.histogram("secs", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ParameterError):
            parent.absorb(worker.snapshot())

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("n_total").inc()
        reg.reset()
        assert reg.snapshot().counters == {}


# ----------------------------------------------------------------------
# Prometheus text exposition.
# ----------------------------------------------------------------------
class TestPrometheusText:
    def test_counter_gauge_help_type(self):
        reg = MetricsRegistry()
        reg.counter("runs_total", help="Solver runs.").inc(3)
        reg.gauge("epoch").set(2)
        text = render_prometheus(reg.snapshot())
        assert "# HELP repro_runs_total Solver runs." in text
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 3" in text
        assert "# TYPE repro_epoch gauge" in text
        assert "repro_epoch 2" in text

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", {"path": 'a"b\\c\nd'}).inc()
        text = render_prometheus(reg.snapshot())
        assert 'repro_odd_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_histogram_is_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("secs", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value)
        text = render_prometheus(reg.snapshot())
        assert 'repro_secs_bucket{le="0.1"} 1' in text
        assert 'repro_secs_bucket{le="1"} 2' in text
        assert 'repro_secs_bucket{le="+Inf"} 3' in text
        assert "repro_secs_count 3" in text

    def test_every_line_is_wellformed(self):
        reg = MetricsRegistry()
        reg.counter("a_total", {"x": "1"}).inc()
        reg.gauge("b").set(1.5)
        reg.histogram("c", buckets=COUNT_BUCKETS[:3]).observe(2)
        for line in render_prometheus(reg.snapshot()).splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part.startswith("repro_")
            float(value)  # every sample value parses


# ----------------------------------------------------------------------
# Span tracing.
# ----------------------------------------------------------------------
class TestTracing:
    def test_nesting_depth_and_self_time(self):
        tracer = SpanTracer()
        with tracer.span("outer", k=8):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events()
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert outer["args"] == {"k": 8}
        assert outer["dur_us"] >= inner["dur_us"]
        assert outer["self_us"] == pytest.approx(
            outer["dur_us"] - inner["dur_us"]
        )

    def test_exception_marks_failed_and_propagates(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (event,) = tracer.events()
        assert event["failed"] is True

    def test_chrome_trace_export(self, tmp_path):
        tracer = SpanTracer()
        with tracer.span("solve.greedy", objective="f2"):
            pass
        doc = tracer.export_chrome_trace()
        assert doc["displayTimeUnit"] == "ms"
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X" and event["cat"] == "repro"
        assert {"name", "ts", "dur", "pid", "tid", "args"} <= set(event)
        out = tmp_path / "trace.json"
        tracer.write_chrome_trace(out)
        assert json.loads(out.read_text())["traceEvents"] == [event]

    def test_ring_buffer_is_bounded(self):
        tracer = SpanTracer(buffer_size=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        names = [event["name"] for event in tracer.events()]
        assert names == ["s6", "s7", "s8", "s9"]


# ----------------------------------------------------------------------
# The process-wide switch.
# ----------------------------------------------------------------------
class TestModuleSwitch:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.registry() is NULL_REGISTRY
        assert obs.tracer() is NULL_TRACER
        obs.inc("ignored_total")
        with obs.span("ignored"):
            pass
        assert obs.snapshot().counters == {}
        assert obs.export_chrome_trace()["traceEvents"] == []

    def test_configure_records_and_is_idempotent(self):
        obs.configure()
        assert obs.enabled()
        obs.inc("runs_total", kind="x")
        obs.configure()  # second call keeps live data
        assert obs.snapshot().counters[
            ("runs_total", (("kind", "x"),))
        ] == 1
        with obs.span("step"):
            pass
        assert [e["name"] for e in obs.tracer().events()] == ["step"]
        obs.reset()
        assert obs.enabled()
        assert obs.snapshot().counters == {}


# ----------------------------------------------------------------------
# Concurrency: nothing lost, nothing double-counted.
# ----------------------------------------------------------------------
class TestThreadConcurrency:
    def test_exact_totals_under_contention(self):
        reg = MetricsRegistry()
        threads_n, per_thread = 8, 5_000

        def hammer(i):
            counter = reg.counter("ops_total")
            hist = reg.histogram("sizes", buckets=COUNT_BUCKETS)
            gauge = reg.gauge("last", {"thread": str(i)})
            for j in range(per_thread):
                counter.inc()
                hist.observe(j % 7)
                gauge.set(j)

        threads = [
            threading.Thread(target=hammer, args=(i,))
            for i in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        total = threads_n * per_thread
        assert snap.counters[("ops_total", ())] == total
        state = snap.histograms[("sizes", ())]
        assert state.count == total
        assert state.sum == threads_n * sum(j % 7 for j in range(per_thread))


# ----------------------------------------------------------------------
# Cross-process merge over the real multiproc engine.
# ----------------------------------------------------------------------
class TestMultiprocMerge:
    def test_shard_metrics_sum_exactly(self):
        from repro.walks.backends import CSRWalkEngine, MultiprocWalkEngine

        graph = power_law_graph(64, 200, seed=5)
        starts = np.repeat(np.arange(graph.num_nodes), 4)
        states = np.arange(starts.size, dtype=np.int64)
        length, seed = 4, 11
        reference = CSRWalkEngine().walk_records(
            graph, starts, length, states, seed=seed
        )
        engine = MultiprocWalkEngine(
            num_procs=2, shard_rows=64, min_parallel_rows=1
        )
        obs.configure(tracing=False)
        try:
            result = engine.walk_records(
                graph, starts, length, states, seed=seed
            )
            snap = obs.snapshot()
        finally:
            engine.close()
        # Parity first: telemetry must not perturb the stream discipline.
        # Record ordering varies with chunking, so compare the sets, the
        # way tests/test_multiproc.py pins records parity.
        span = starts.size * (length + 2)

        def keys(records):
            hits, record_states, hops = records
            return np.sort(
                (hits * span + record_states) * (length + 2) + hops
            )

        np.testing.assert_array_equal(keys(result), keys(reference))
        counters = {
            name: value
            for (name, labels), value in snap.counters.items()
        }
        shards = math.ceil(starts.size / engine.shard_rows)
        # Worker-shard sums must equal the single-process ground truth
        # bit for bit: every row and every record accounted for once.
        assert counters["walk_shard_rows_total"] == starts.size
        assert counters["walk_shards_total"] == shards
        assert counters["walk_shard_records_total"] == reference[0].size
        roundtrip = snap.histograms[
            ("walk_worker_roundtrip_seconds", ())
        ]
        assert roundtrip.count == shards


# ----------------------------------------------------------------------
# /metrics endpoint + /stats taxonomy (HTTP tier).
# ----------------------------------------------------------------------
class TestMetricsEndpoint:
    @pytest.fixture()
    def served(self):
        from repro.serve import (
            DominationService,
            IndexSnapshot,
            start_http_server,
        )
        from repro.walks.index import FlatWalkIndex

        graph = power_law_graph(80, 240, seed=3)
        index = FlatWalkIndex.build(graph, 4, 10, seed=4)
        service = DominationService(
            IndexSnapshot.capture(graph, index), batch_window=0.0
        )
        with service:
            handle = start_http_server(service, stats_window=16)
            try:
                yield handle
            finally:
                handle.stop()

    def _get(self, handle, path):
        from repro.serve.loadgen import _HttpClient

        client = _HttpClient(handle.base_url)
        try:
            return client.request("GET", path)
        finally:
            client.close()

    def _get_text(self, handle, path):
        """Raw GET — /metrics serves Prometheus text, not JSON."""
        import urllib.request

        with urllib.request.urlopen(handle.base_url + path) as response:
            return (
                response.status,
                response.read().decode("utf-8"),
                response.headers.get("Content-Type", ""),
            )

    def _post(self, handle, kind, payload):
        from repro.serve.loadgen import _HttpClient

        client = _HttpClient(handle.base_url)
        try:
            return client.request("POST", f"/query/{kind}", payload)
        finally:
            client.close()

    def test_metrics_covers_serve_solver_persistence(
        self, served, tmp_path
    ):
        from repro.walks.persistence import load_index, save_index

        obs.configure()
        # Drive one query (solver counters) and one save/load round trip
        # (persistence counters) with telemetry on.
        status, _ = self._post(served, "select", {"k": 3})
        assert status == 200
        snapshot = served.server._service.snapshot
        path = save_index(
            snapshot.index, tmp_path / "i.npz", graph=snapshot.graph
        )
        load_index(path)
        status, text, content_type = self._get_text(served, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        # Serving tier (always on, registry-backed).
        assert 'repro_http_requests_total{endpoint="select"} 1' in text
        assert "repro_serve_queries_total 1" in text
        assert "repro_http_ready 1" in text
        # Solver + persistence, via the global switch.
        assert "repro_solver_runs_total" in text
        assert "repro_persistence_saves_total" in text
        assert "repro_persistence_loads_total" in text
        # Well-formed: every sample line parses.
        for line in text.splitlines():
            if line and not line.startswith("#"):
                float(line.rsplit(" ", 1)[1])

    def test_metrics_works_without_telemetry(self, served):
        assert not obs.enabled()
        status, text, _ = self._get_text(served, "/metrics")
        assert status == 200
        assert "repro_http_requests_total" in text
        assert "repro_solver_runs_total" not in text

    def test_stats_shape_and_error_taxonomy(self, served):
        status, _ = self._post(served, "select", {"k": "nope"})
        assert status == 400
        status, payload = self._get(served, "/stats")
        assert status == 200
        select = payload["endpoints"]["select"]
        assert select["errors"] == 1
        assert select["errors_by_status"] == {"400": 1}
        # The exposition endpoint counts itself under "prometheus".
        assert "prometheus" in payload["endpoints"]

    def test_loadgen_report_carries_endpoint_taxonomy(self, served):
        from repro.serve import WorkloadQuery, run_load

        bad = WorkloadQuery(kind="metrics", targets=(10_000,))
        good = WorkloadQuery(kind="metrics", targets=(1,))
        report = run_load(
            None, [bad, good, good], num_clients=1,
            transport="http", base_url=served.base_url,
        )
        assert report.errors == 1
        taxonomy = report.endpoints["metrics"]["errors_by_status"]
        assert taxonomy.get("400") == 1

    def test_inprocess_report_has_no_endpoint_taxonomy(self):
        from repro.serve import (
            DominationService,
            IndexSnapshot,
            WorkloadQuery,
            run_load,
        )
        from repro.walks.index import FlatWalkIndex

        graph = power_law_graph(60, 180, seed=6)
        index = FlatWalkIndex.build(graph, 4, 8, seed=6)
        service = DominationService(
            IndexSnapshot.capture(graph, index), batch_window=0.0
        )
        with service:
            report = run_load(
                service, [WorkloadQuery(kind="metrics", targets=(1,))],
                num_clients=1,
            )
        assert report.endpoints is None


# ----------------------------------------------------------------------
# CLI surface.
# ----------------------------------------------------------------------
class TestCli:
    def test_stats_window_must_be_positive(self, tmp_path, capsys):
        from repro.cli import main

        workload = tmp_path / "w.txt"
        workload.write_text("metrics 1\n")
        status = main([
            "serve", "--synthetic", "50,150", "--workload", str(workload),
            "--stats-window", "0",
        ])
        assert status == 1
        assert "stats_window must be >= 1" in capsys.readouterr().err

    def test_stats_requires_url(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["stats"])

    def test_traced_index_writes_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "trace.json"
        status = main([
            "index", "--synthetic", "60,180", "-L", "3", "-R", "5",
            "--seed", "1", "--out", str(tmp_path / "i.npz"),
            "--telemetry", "--trace-out", str(trace),
        ])
        assert status == 0
        doc = json.loads(trace.read_text())
        names = {event["name"] for event in doc["traceEvents"]}
        assert {"index.build", "persistence.save"} <= names
        err = capsys.readouterr().err
        assert "repro_index_builds_total" in err


# ----------------------------------------------------------------------
# Slow lane: concurrency property.
# ----------------------------------------------------------------------
pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

op_lists = st.lists(
    st.tuples(
        st.sampled_from(["inc", "observe"]),
        st.integers(min_value=0, max_value=100),
    ),
    min_size=1,
    max_size=60,
)


@pytest.mark.slow
class TestConcurrencyProperties:
    @settings(
        deadline=None,
        max_examples=50,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(schedules=st.lists(op_lists, min_size=2, max_size=6))
    def test_no_lost_updates(self, schedules):
        """N threads apply arbitrary op schedules; the snapshot must
        account for every operation exactly once."""
        reg = MetricsRegistry()
        barrier = threading.Barrier(len(schedules))

        def run(ops):
            counter = reg.counter("ops_total")
            hist = reg.histogram("vals", buckets=COUNT_BUCKETS)
            barrier.wait()
            for kind, value in ops:
                if kind == "inc":
                    counter.inc(value)
                else:
                    hist.observe(value)

        threads = [
            threading.Thread(target=run, args=(ops,)) for ops in schedules
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        flat = [op for ops in schedules for op in ops]
        want_inc = sum(v for kind, v in flat if kind == "inc")
        observed = [v for kind, v in flat if kind == "observe"]
        snap = reg.snapshot()
        assert snap.counters.get(("ops_total", ()), 0) == want_inc
        if observed:
            state = snap.histograms[("vals", ())]
            assert state.count == len(observed)
            assert state.sum == sum(observed)
