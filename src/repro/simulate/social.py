"""Social-browsing simulation — the paper's item-placement scenario.

Users find content by *social browsing*: starting from their own page they
follow social ties, viewing at most ``L`` pages per session (the paper's
L-length walk model of [17, 16]).  An item is placed on a set of hosting
users; a session *discovers* the item when it reaches any host — including
at hop 0, when the browsing user is itself a host.

:func:`simulate_social_browsing` runs one session per requested start and
reports the empirical discovery rate (the application-level reading of the
paper's EHN metric, Problem 2) and the mean hops to discovery among
successful sessions (the AHT reading, Problem 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.hitting.transition import target_mask
from repro.simulate._walks import run_first_hits
from repro.walks.backends import WalkEngine
from repro.walks.rng import resolve_rng

__all__ = ["SocialBrowsingReport", "simulate_social_browsing"]

_START_MODES = ("uniform", "degree", "all")


@dataclass(frozen=True)
class SocialBrowsingReport:
    """Outcome of a social-browsing simulation.

    Attributes
    ----------
    num_sessions:
        Browsing sessions simulated.
    num_discoveries:
        Sessions that reached a hosting user within the hop budget.
    discovery_rate:
        ``num_discoveries / num_sessions`` (0 for an empty simulation).
    mean_hops_to_discovery:
        Average first-hit hop among discovering sessions; ``nan`` when no
        session discovered the item.
    mean_truncated_hops:
        Average of ``min(first hit, L)`` over *all* sessions — the direct
        empirical counterpart of the generalized hitting time ``h^L_uS``.
    length:
        Hop budget ``L`` per session.
    num_hosts:
        Size of the placement.
    """

    num_sessions: int
    num_discoveries: int
    discovery_rate: float
    mean_hops_to_discovery: float
    mean_truncated_hops: float
    length: int
    num_hosts: int


def _session_starts(
    graph: "Graph | WeightedDiGraph",
    num_sessions: int,
    start: str,
    rng: np.random.Generator,
) -> np.ndarray:
    if start not in _START_MODES:
        raise ParameterError(f"start must be one of {_START_MODES}")
    n = graph.num_nodes
    if start == "all":
        reps = max(1, num_sessions // max(n, 1))
        return np.tile(np.arange(n, dtype=np.int64), reps)
    if start == "uniform":
        return rng.integers(0, n, size=num_sessions)
    degrees = (
        graph.out_degrees if isinstance(graph, WeightedDiGraph)
        else graph.degrees
    ).astype(np.float64)
    total = degrees.sum()
    if total == 0:
        return rng.integers(0, n, size=num_sessions)
    return rng.choice(n, size=num_sessions, p=degrees / total)


def simulate_social_browsing(
    graph: "Graph | WeightedDiGraph",
    hosts: Collection[int],
    num_sessions: int = 10_000,
    length: int = 6,
    start: str = "uniform",
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> SocialBrowsingReport:
    """Simulate browsing sessions against an item placement.

    Parameters
    ----------
    graph:
        The social network — undirected, or a directed weighted trust
        network (:class:`WeightedDiGraph`), where a browsing user follows
        an out-edge with probability proportional to its weight.
    hosts:
        Users hosting the item (any iterable of node ids).
    num_sessions:
        Number of independent browsing sessions.  With ``start="all"`` the
        session count is rounded down to a whole number of passes over the
        node set (at least one).
    length:
        Hop budget ``L`` per session.
    start:
        Session-start distribution: ``"uniform"`` over users, ``"degree"``
        (active users browse more), or ``"all"`` (every user browses the
        same number of times — the paper's objective weighs every node
        equally, so this mode mirrors the objectives most closely).
    seed:
        Randomness control, package-wide convention.
    engine:
        Walk backend (:mod:`repro.walks.backends`); default ``"numpy"``.
    """
    if num_sessions < 1:
        raise ParameterError("num_sessions must be >= 1")
    if length < 0:
        raise ParameterError("length must be >= 0")
    mask = target_mask(graph.num_nodes, hosts)
    rng = resolve_rng(seed)
    starts = _session_starts(graph, num_sessions, start, rng)
    first = run_first_hits(graph, starts, length, mask, rng, engine=engine)
    discovered = first >= 0
    num_discoveries = int(discovered.sum())
    truncated = np.where(discovered, first, length).astype(np.float64)
    mean_hops = (
        float(first[discovered].mean()) if num_discoveries else float("nan")
    )
    return SocialBrowsingReport(
        num_sessions=int(starts.size),
        num_discoveries=num_discoveries,
        discovery_rate=num_discoveries / starts.size,
        mean_hops_to_discovery=mean_hops,
        mean_truncated_hops=float(truncated.mean()),
        length=length,
        num_hosts=int(mask.sum()),
    )
