"""Tests for SelectionResult."""

import pytest

from repro.core.result import SelectionResult


class TestSelectionResult:
    def test_normalizes_types(self):
        import numpy as np

        result = SelectionResult(
            algorithm="X",
            selected=(np.int64(1), np.int64(2)),
            gains=(np.float64(0.5),),
        )
        assert result.selected == (1, 2)
        assert isinstance(result.selected[0], int)
        assert isinstance(result.gains[0], float)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            SelectionResult(algorithm="X", selected=(1, 1))

    def test_selected_set(self):
        result = SelectionResult(algorithm="X", selected=(3, 1, 2))
        assert result.selected_set == frozenset({1, 2, 3})

    def test_prefix(self):
        result = SelectionResult(algorithm="X", selected=(3, 1, 2))
        assert result.prefix(2) == (3, 1)
        assert result.prefix(0) == ()
        assert result.prefix(99) == (3, 1, 2)

    def test_prefix_negative(self):
        with pytest.raises(ValueError):
            SelectionResult(algorithm="X", selected=(1,)).prefix(-1)

    def test_summary_mentions_algorithm(self):
        result = SelectionResult(algorithm="DPF1", selected=(1,))
        assert "DPF1" in result.summary()

    def test_params_default_isolated(self):
        a = SelectionResult(algorithm="X", selected=())
        b = SelectionResult(algorithm="Y", selected=())
        a.params["k"] = 1
        assert "k" not in b.params
