"""Fig. 6: average hitting time vs k on the four datasets.

Paper shape: the approximate greedy algorithms clearly beat Degree and
Dominate everywhere; ApproxF1 (which optimizes AHT directly) is the best;
AHT decreases as k grows.
"""

from benchmarks.conftest import shared_fig6_fig7


def test_fig6(benchmark, config, report):
    aht_table, _ = benchmark.pedantic(
        lambda: shared_fig6_fig7(config), rounds=1, iterations=1
    )
    report(aht_table, "fig6.txt")
    aht = aht_table.columns.index("AHT")
    kmax = max(config.budgets)
    for dataset in {row[0] for row in aht_table.rows}:
        at_kmax = {
            row[1]: row[aht] for row in aht_table.filtered(dataset=dataset, k=kmax)
        }
        # Greedy (either variant) beats both baselines at the full budget.
        best_greedy = min(at_kmax["ApproxF1"], at_kmax["ApproxF2"])
        assert best_greedy <= at_kmax["Degree"] + 1e-9
        assert best_greedy <= at_kmax["Dominate"] + 1e-9
        # AHT decreases with k for the greedy algorithms.
        for algorithm in ("ApproxF1", "ApproxF2"):
            series = [
                row[aht]
                for row in sorted(
                    aht_table.filtered(dataset=dataset, algorithm=algorithm),
                    key=lambda r: r[2],
                )
            ]
            assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))
