"""Classic random-walk theory the L-length model truncates.

The paper's ``h^L_uS`` is the truncated version of the classic hitting
time ``h_uS = E[min{t : Z_t ∈ S}]`` of an *unbounded* walk.  This module
computes the classic quantities so the truncation can be quantified:

* :func:`stationary_distribution` — ``pi_u = d_u / 2m`` on the non-dangling
  part of the graph (the unique stationary law of the uniform walk on a
  connected non-bipartite graph);
* :func:`absorbing_hitting_time` — exact ``h_uS`` by solving the absorbing
  linear system ``(I - Q) h = 1`` over ``V \\ S``, where ``Q`` is the
  transition matrix restricted to the transient states;
* :func:`truncation_gap` — ``h_uS - h^L_uS >= 0`` per node, which decays to
  zero as ``L`` grows (``h^L`` increases monotonically to ``h``); the rate
  of decay tells how large an ``L`` the application model needs before the
  horizon stops binding.

Nodes that cannot reach ``S`` (other components, or dangling) have
``h_uS = inf``, while ``h^L_uS = L`` — the truncated model's way of
charging a miss.
"""

from __future__ import annotations

from typing import Collection

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.properties import connected_components
from repro.hitting.exact import hitting_time_vector
from repro.hitting.transition import target_mask, transition_matrix

__all__ = [
    "stationary_distribution",
    "absorbing_hitting_time",
    "truncation_gap",
    "recommend_length",
]


def stationary_distribution(graph: Graph) -> np.ndarray:
    """``pi_u = d_u / 2m`` — the degree-proportional stationary law.

    Requires at least one edge; dangling nodes get mass 0 (they are not
    part of any recurrent class of the uniform walk with stay-in-place
    dangling policy — each dangling node is its own absorbing state, so a
    global stationary law only makes sense on the non-dangling part).
    """
    degrees = graph.degrees.astype(np.float64)
    total = degrees.sum()
    if total == 0:
        raise ParameterError("stationary distribution needs at least one edge")
    return degrees / total


def absorbing_hitting_time(
    graph: Graph, targets: Collection[int]
) -> np.ndarray:
    """Exact untruncated hitting times ``h_uS`` for every source.

    Solves ``(I - Q) h = 1`` on the transient states that can reach ``S``;
    states that cannot reach ``S`` get ``inf``; states in ``S`` get 0.
    """
    mask = target_mask(graph.num_nodes, targets)
    if not mask.any():
        raise ParameterError("targets must be non-empty for absorbing times")
    n = graph.num_nodes
    reachable = _reaches_targets(graph, mask)
    out = np.full(n, np.inf, dtype=np.float64)
    out[mask] = 0.0
    transient = reachable & ~mask
    if not transient.any():
        return out
    matrix = transition_matrix(graph)
    idx = np.flatnonzero(transient)
    q = matrix[idx][:, idx].tocsc()
    system = (sp.identity(idx.size, format="csc") - q).tocsc()
    ones = np.ones(idx.size, dtype=np.float64)
    out[idx] = spla.spsolve(system, ones)
    return out


def _reaches_targets(graph: Graph, mask: np.ndarray) -> np.ndarray:
    """Which nodes can reach the target set (same undirected component)."""
    labels = connected_components(graph)
    target_components = np.unique(labels[mask])
    return np.isin(labels, target_components)


def truncation_gap(
    graph: Graph, targets: Collection[int], length: int
) -> np.ndarray:
    """Per-node gap ``h_uS - h^L_uS`` (``inf`` where ``h_uS`` is infinite).

    Nonnegative everywhere: truncation can only shorten the expected wait.
    The gap vanishing (below any tolerance) certifies that the application's
    hop budget ``L`` no longer binds for that source.
    """
    if length < 0:
        raise ParameterError("walk length L must be >= 0")
    truncated = hitting_time_vector(graph, targets, length)
    unbounded = absorbing_hitting_time(graph, targets)
    return unbounded - truncated


def recommend_length(
    graph: Graph,
    targets: Collection[int],
    tolerance: float = 0.05,
    max_length: int = 1_024,
) -> int:
    """Smallest ``L`` whose *relative* mean truncation gap is ≤ tolerance.

    Answers the modeling question Fig. 10 sweeps by hand: how large must
    the hop budget be before the horizon stops distorting hitting times?
    The criterion is ``mean(h_uS - h^L_uS) <= tolerance * mean(h_uS)``
    over the sources with finite ``h_uS`` outside ``S``.

    Doubling search on ``L`` followed by a binary refinement, so the cost
    is ``O(m * L* * log L*)`` for the answer ``L*``.  Raises when even
    ``max_length`` cannot reach the tolerance (disconnected sources are
    excluded by construction, so this means the tolerance is too tight
    for the graph's mixing behavior).
    """
    if not 0.0 < tolerance < 1.0:
        raise ParameterError("tolerance must lie in (0, 1)")
    if max_length < 1:
        raise ParameterError("max_length must be >= 1")
    mask = target_mask(graph.num_nodes, targets)
    unbounded = absorbing_hitting_time(graph, targets)
    relevant = np.isfinite(unbounded) & ~mask
    if not relevant.any():
        return 0  # nothing can (or needs to) reach S: any horizon is exact
    budget = float(unbounded[relevant].mean()) * tolerance

    def gap_at(length: int) -> float:
        truncated = hitting_time_vector(graph, targets, length)
        return float((unbounded[relevant] - truncated[relevant]).mean())

    low, high = 0, 1
    while gap_at(high) > budget:
        low, high = high, high * 2
        if high > max_length:
            raise ParameterError(
                f"no L <= {max_length} meets tolerance {tolerance}"
            )
    while low + 1 < high:
        mid = (low + high) // 2
        if gap_at(mid) > budget:
            low = mid
        else:
            high = mid
    return high
