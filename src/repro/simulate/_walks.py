"""Walk dispatch shared by the simulators.

The simulators accept either the undirected :class:`~repro.graphs.adjacency.
Graph` or the directed, weighted :class:`~repro.graphs.weighted.
WeightedDiGraph` (the paper's Section 2 extension) — a browsing user in a
trust network follows recommendations with probability proportional to
trust.  This module hides the walk-engine dispatch so each simulator is
written once.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.walks.alias import weighted_batch_walks
from repro.walks.engine import batch_walks

__all__ = ["run_walks", "node_count"]


def node_count(graph: "Graph | WeightedDiGraph") -> int:
    """Node count for either graph flavor."""
    return graph.num_nodes


def run_walks(
    graph: "Graph | WeightedDiGraph",
    starts: np.ndarray,
    length: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Batch of L-length walks on an unweighted or weighted graph."""
    if isinstance(graph, WeightedDiGraph):
        return weighted_batch_walks(graph, starts, length, seed=rng)
    return batch_walks(graph, starts, length, seed=rng)
