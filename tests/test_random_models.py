"""Random-graph families beyond the paper's power-law model."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.properties import is_connected
from repro.graphs.random_models import (
    configuration_model_graph,
    forest_fire_graph,
    random_regular_graph,
    watts_strogatz_graph,
)


class TestWattsStrogatz:
    def test_zero_rewiring_is_ring_lattice(self):
        graph = watts_strogatz_graph(12, 4, 0.0, seed=1)
        assert graph.num_nodes == 12
        assert graph.num_edges == 12 * 2  # n * k / 2
        # Every node keeps exactly its lattice degree.
        assert (graph.degrees == 4).all()

    def test_edge_count_preserved_under_rewiring(self):
        graph = watts_strogatz_graph(40, 6, 0.3, seed=2)
        assert graph.num_edges == 40 * 3

    def test_full_rewiring_changes_topology(self):
        lattice = watts_strogatz_graph(30, 4, 0.0, seed=3)
        rewired = watts_strogatz_graph(30, 4, 1.0, seed=3)
        assert lattice != rewired

    def test_deterministic_under_seed(self):
        a = watts_strogatz_graph(25, 4, 0.5, seed=7)
        b = watts_strogatz_graph(25, 4, 0.5, seed=7)
        assert a == b

    def test_simple_graph_invariants(self):
        graph = watts_strogatz_graph(50, 8, 0.7, seed=4)
        # No self-loops: CSR rows never contain their own index.
        for u in range(graph.num_nodes):
            assert u not in graph.neighbors(u)

    def test_rejects_odd_neighbors(self):
        with pytest.raises(ParameterError):
            watts_strogatz_graph(10, 3, 0.1)

    def test_rejects_small_n(self):
        with pytest.raises(ParameterError):
            watts_strogatz_graph(4, 4, 0.1)

    def test_rejects_bad_probability(self):
        with pytest.raises(ParameterError):
            watts_strogatz_graph(10, 2, 1.5)


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (20, 4), (15, 2)])
    def test_degrees_are_exact(self, n, d):
        graph = random_regular_graph(n, d, seed=5)
        assert (graph.degrees == d).all()
        assert graph.num_edges == n * d // 2

    def test_rejects_odd_product(self):
        with pytest.raises(ParameterError):
            random_regular_graph(5, 3)

    def test_rejects_degree_too_large(self):
        with pytest.raises(ParameterError):
            random_regular_graph(5, 5)

    def test_rejects_zero_degree(self):
        with pytest.raises(ParameterError):
            random_regular_graph(5, 0)

    def test_deterministic_under_seed(self):
        a = random_regular_graph(16, 4, seed=9)
        b = random_regular_graph(16, 4, seed=9)
        assert a == b

    def test_degree_baseline_is_neutralized(self):
        """On a regular graph every node ties on degree — the property that
        motivates this family for ablations."""
        graph = random_regular_graph(20, 4, seed=11)
        degrees = graph.degrees
        assert degrees.min() == degrees.max()


class TestConfigurationModel:
    def test_approximates_degree_sequence(self):
        wanted = np.array([5, 4, 3, 3, 2, 2, 2, 2, 1, 1, 1, 2])
        graph = configuration_model_graph(wanted, seed=6)
        got = graph.degrees
        # Erased model: degrees can only fall short, never exceed.
        assert (got <= wanted).all()
        # And the total shortfall is small for a sparse sequence.
        assert (wanted - got).sum() <= 6

    def test_zero_degrees_allowed(self):
        graph = configuration_model_graph([2, 1, 1, 0], seed=7)
        assert graph.num_nodes == 4
        assert graph.degree(3) == 0

    def test_rejects_odd_sum(self):
        with pytest.raises(ParameterError):
            configuration_model_graph([1, 1, 1])

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            configuration_model_graph([2, -1, 1])

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            configuration_model_graph([])

    def test_rejects_infeasible_max_degree(self):
        with pytest.raises(ParameterError):
            configuration_model_graph([3, 1, 1, 1][:3])

    def test_deterministic_under_seed(self):
        seq = [3, 2, 2, 2, 2, 1]
        a = configuration_model_graph(seq, seed=13)
        b = configuration_model_graph(seq, seed=13)
        assert a == b


class TestForestFire:
    def test_connected_by_construction(self):
        graph = forest_fire_graph(60, 0.3, seed=8)
        assert graph.num_nodes == 60
        assert is_connected(graph)

    def test_at_least_spanning_tree_edges(self):
        graph = forest_fire_graph(40, 0.4, seed=9)
        assert graph.num_edges >= 39

    def test_higher_probability_burns_more(self):
        sparse = forest_fire_graph(80, 0.05, seed=10)
        dense = forest_fire_graph(80, 0.6, seed=10)
        assert dense.num_edges > sparse.num_edges

    def test_deterministic_under_seed(self):
        a = forest_fire_graph(30, 0.35, seed=15)
        b = forest_fire_graph(30, 0.35, seed=15)
        assert a == b

    def test_rejects_bad_params(self):
        with pytest.raises(ParameterError):
            forest_fire_graph(1, 0.3)
        with pytest.raises(ParameterError):
            forest_fire_graph(10, 1.0)
        with pytest.raises(ParameterError):
            forest_fire_graph(10, -0.1)
