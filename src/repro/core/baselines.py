"""Baseline selection algorithms from the paper's evaluation (Section 4.1).

* :func:`degree_baseline` — the ``Degree`` algorithm: take the ``k``
  highest-degree nodes (high-degree nodes are the easiest to reach by a
  random walk, so this is the natural heuristic).
* :func:`dominate_baseline` — the ``Dominate`` algorithm: the classic
  dominating-set greedy under a budget.  In each round pick
  ``v = argmax_{u not in S} |N({u}) - N(S)|`` where ``N(S)`` is the set of
  immediate neighbors of ``S``, then add it to ``S``.
* :func:`random_baseline` — uniform random ``k``-subset; not in the paper
  but a useful sanity floor for tests and ablations.

Ties break toward the smaller node id so runs are deterministic.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.result import SelectionResult
from repro.walks.rng import resolve_rng

__all__ = ["degree_baseline", "dominate_baseline", "random_baseline"]


def _check_budget(graph: Graph, k: int) -> None:
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")


def degree_baseline(graph: Graph, k: int) -> SelectionResult:
    """Top-``k`` nodes by degree (``Degree`` in the paper's figures)."""
    _check_budget(graph, k)
    started = time.perf_counter()
    degrees = graph.degrees
    # Sort by (-degree, id): highest degree first, smaller id on ties.
    order = np.lexsort((np.arange(graph.num_nodes), -degrees))
    selected = order[:k]
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm="Degree",
        selected=tuple(int(v) for v in selected),
        gains=tuple(float(degrees[v]) for v in selected),
        elapsed_seconds=elapsed,
        num_gain_evaluations=0,
        params={"k": k},
    )


def dominate_baseline(graph: Graph, k: int) -> SelectionResult:
    """Budgeted dominating-set greedy (``Dominate`` in the paper).

    Implements the round rule of Section 4.1 verbatim: the gain of a
    candidate ``u`` is the number of its neighbors not yet neighbors of
    ``S``.  Runs in ``O(k)`` rounds with a lazy priority queue — gains only
    shrink as ``N(S)`` grows, so stale upper bounds are safe.
    """
    _check_budget(graph, k)
    started = time.perf_counter()
    import heapq

    n = graph.num_nodes
    covered = np.zeros(n, dtype=bool)  # membership in N(S)
    chosen = np.zeros(n, dtype=bool)
    heap = [(-graph.degree(u), u) for u in range(n)]
    heapq.heapify(heap)
    selected: list[int] = []
    gains: list[float] = []
    while len(selected) < k and heap:
        neg_gain, u = heapq.heappop(heap)
        if chosen[u]:
            continue
        current = int(np.count_nonzero(~covered[graph.neighbors(u)]))
        if -neg_gain > current:
            heapq.heappush(heap, (-current, u))
            continue
        selected.append(u)
        gains.append(float(current))
        chosen[u] = True
        covered[graph.neighbors(u)] = True
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm="Dominate",
        selected=tuple(selected),
        gains=tuple(gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=0,
        params={"k": k},
    )


def random_baseline(
    graph: Graph, k: int, seed: "int | np.random.Generator | None" = None
) -> SelectionResult:
    """Uniform random ``k``-subset (sanity floor, not from the paper)."""
    _check_budget(graph, k)
    started = time.perf_counter()
    rng = resolve_rng(seed)
    selected = rng.choice(graph.num_nodes, size=k, replace=False)
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm="Random",
        selected=tuple(int(v) for v in selected),
        elapsed_seconds=elapsed,
        params={"k": k},
    )
