"""Approximate greedy — Algorithms 3-6, paper-faithful implementation.

This module transcribes the pseudocode of Section 3.2 as directly as Python
allows, down to the ``D[1:R][1:n]`` array and the per-entry comparisons of
Algorithms 4 and 5.  It is the readable reference implementation: the
vectorized engine in :mod:`repro.core.approx_fast` must agree with it
entry-for-entry (tests enforce this on shared walks), and the worked
Example 3.1 of the paper runs verbatim against this code in the test suite.

Semantics recap (Problem 1; Problem 2 variants in comments, as in the
paper's pseudocode):

* ``D[i][u]`` estimates ``h^L_uS`` using replicate ``i``'s walks
  (initialized to ``L`` for ``S = empty``).
* ``Approx_Gain`` (Alg. 4): ``sigma_u = sum_i (D[i][u] +
  sum_{<v, w> in I[i][u], w < D[i][v]} (D[i][v] - w)) / R``; the constant
  ``-L`` of the true marginal gain is dropped, as the paper notes, because
  it does not affect the argmax.
* ``Update`` (Alg. 5): after selecting ``u``, set ``D[i][u] = 0`` and relax
  ``D[i][v] = min(D[i][v], w)`` for every entry ``<v, w>`` of ``I[i][u]``.

For Problem 2, ``D[i][u]`` estimates the *hit indicator*: initialized to 0,
set to 1 when replicate ``i``'s walk from ``u`` hits the current ``S``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.result import SelectionResult
from repro.walks.index import InvertedIndex

__all__ = ["approx_gain", "update_distances", "approx_greedy", "initial_distances"]

_OBJECTIVES = ("f1", "f2")


def _check_objective(objective: str) -> None:
    if objective not in _OBJECTIVES:
        raise ParameterError(f"objective must be one of {_OBJECTIVES}")


def initial_distances(index: InvertedIndex, objective: str) -> list[list[int]]:
    """The ``D[1:R][1:n]`` array for ``S = empty`` (Alg. 6 line 3).

    ``L`` everywhere for Problem 1 (``h^L_u∅ = L``), ``0`` for Problem 2
    (no walk hits the empty set).
    """
    _check_objective(objective)
    fill = index.length if objective == "f1" else 0
    return [
        [fill] * index.num_nodes for _ in range(index.num_replicates)
    ]


def approx_gain(
    index: InvertedIndex,
    distances: list[list[int]],
    candidate: int,
    objective: str = "f1",
) -> float:
    """Algorithm 4 (``Approx_Gain``): estimated marginal gain of one node."""
    _check_objective(objective)
    sigma = 0.0
    for i in range(index.num_replicates):
        row = distances[i]
        if objective == "f1":
            sigma += row[candidate]
            for entry in index.entries(i, candidate):
                if entry.hop < row[entry.walker]:
                    sigma += row[entry.walker] - entry.hop
        else:
            sigma += 1 - row[candidate]
            for entry in index.entries(i, candidate):
                # Problem-2 entries carry weight 1 in the paper; any recorded
                # hit counts iff the walker does not already hit S.
                if row[entry.walker] == 0:
                    sigma += 1
    return sigma / index.num_replicates


def update_distances(
    index: InvertedIndex,
    distances: list[list[int]],
    selected: int,
    objective: str = "f1",
) -> None:
    """Algorithm 5 (``Update``): fold one selection into ``D`` in place."""
    _check_objective(objective)
    for i in range(index.num_replicates):
        row = distances[i]
        if objective == "f1":
            row[selected] = 0
            for entry in index.entries(i, selected):
                if entry.hop < row[entry.walker]:
                    row[entry.walker] = entry.hop
        else:
            row[selected] = 1
            for entry in index.entries(i, selected):
                if row[entry.walker] == 0:
                    row[entry.walker] = 1


def approx_greedy(
    graph: Graph,
    k: int,
    length: int,
    num_replicates: int = 100,
    objective: str = "f1",
    seed: "int | np.random.Generator | None" = None,
    index: InvertedIndex | None = None,
) -> SelectionResult:
    """Algorithm 6: the approximate greedy algorithm (reference version).

    Parameters mirror the paper: budget ``k``, walk length ``L``, replicate
    count ``R``.  A prebuilt ``index`` can be supplied to reuse walks across
    runs (e.g. to solve both problems from the same samples, or to inject
    deterministic walks in tests); otherwise Algorithm 3 builds one.

    Ties in the argmax break toward the smaller node id (the paper breaks
    them randomly; a deterministic rule makes runs reproducible).
    """
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")
    _check_objective(objective)
    started = time.perf_counter()
    if index is None:
        index = InvertedIndex.build(graph, length, num_replicates, seed=seed)
    elif index.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    distances = initial_distances(index, objective)
    selected: list[int] = []
    gains: list[float] = []
    chosen = [False] * graph.num_nodes
    evaluations = 0
    for _ in range(k):
        best_node = -1
        best_gain = -float("inf")
        for u in range(graph.num_nodes):
            if chosen[u]:
                continue
            gain = approx_gain(index, distances, u, objective)
            evaluations += 1
            if gain > best_gain:
                best_gain = gain
                best_node = u
        selected.append(best_node)
        gains.append(best_gain)
        chosen[best_node] = True
        update_distances(index, distances, best_node, objective)
    elapsed = time.perf_counter() - started
    name = "ApproxF1" if objective == "f1" else "ApproxF2"
    return SelectionResult(
        algorithm=name,
        selected=tuple(selected),
        gains=tuple(gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=evaluations,
        params={
            "k": k,
            "L": index.length,
            "R": index.num_replicates,
            "method": "approx",
            "objective": objective,
            "engine": "reference",
        },
    )
