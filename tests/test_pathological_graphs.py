"""Every solver against degenerate graph shapes.

A production library cannot assume benign inputs: placements get requested
on edgeless graphs, graphs with one node, graphs dominated by dangling
nodes, and disconnected archipelagos.  These tests sweep the full solver
matrix over such shapes and pin down the package-wide conventions
(DESIGN.md §5): dangling walks stay put, ``h^L_uS = L`` and ``p^L_uS = 0``
for unreachable sources, selections are always distinct and within range.
"""

import numpy as np
import pytest

from repro.core.edge_domination import edge_domination_greedy
from repro.core.problems import SOLVER_NAMES, Problem1, Problem2, solve
from repro.core.stochastic import stochastic_approx_greedy
from repro.graphs.adjacency import Graph
from repro.graphs.builder import GraphBuilder
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.metrics.evaluation import evaluate_selection
from repro.simulate import (
    simulate_ad_campaign,
    simulate_p2p_search,
    simulate_social_browsing,
)

SAMPLING_SOLVERS = ("sampling", "approx", "approx-fast", "random")


def edgeless(n: int = 5) -> Graph:
    builder = GraphBuilder()
    builder.touch_node(n - 1)
    return builder.build()


def single_node() -> Graph:
    builder = GraphBuilder()
    builder.touch_node(0)
    return builder.build()


def archipelago() -> Graph:
    """Three 2-node islands."""
    return Graph.from_edges([(0, 1), (2, 3), (4, 5)])


def dangling_heavy() -> Graph:
    """One edge, eight dangling nodes."""
    builder = GraphBuilder()
    builder.add_edge(0, 1)
    builder.touch_node(9)
    return builder.build()


def _solver_options(method: str) -> dict:
    options: dict = {}
    if method in ("sampling", "approx", "approx-fast"):
        options["num_replicates"] = 5
        options["seed"] = 7
    elif method == "random":
        options["seed"] = 7
    return options


@pytest.mark.parametrize("method", SOLVER_NAMES)
@pytest.mark.parametrize(
    "factory", [edgeless, single_node, archipelago, dangling_heavy]
)
class TestSolverMatrix:
    def test_valid_selection_everywhere(self, method, factory):
        graph = factory()
        k = min(2, graph.num_nodes)
        problem = Problem2(graph, k, 3)
        result = solve(problem, method=method, **_solver_options(method))
        assert len(result.selected) == k
        assert len(set(result.selected)) == k
        assert all(0 <= v < graph.num_nodes for v in result.selected)

    def test_problem1_also_works(self, method, factory):
        graph = factory()
        k = min(1, graph.num_nodes)
        problem = Problem1(graph, k, 2)
        result = solve(problem, method=method, **_solver_options(method))
        assert len(result.selected) == k


class TestConventionsOnDegenerateShapes:
    def test_edgeless_hitting_times_saturate(self):
        graph = edgeless()
        h = hitting_time_vector(graph, [0], 4)
        assert h[0] == 0.0
        np.testing.assert_allclose(h[1:], 4.0)  # unreachable -> L

    def test_edgeless_probabilities_vanish(self):
        graph = edgeless()
        p = hit_probability_vector(graph, [0], 4)
        assert p[0] == 1.0
        np.testing.assert_allclose(p[1:], 0.0)

    def test_archipelago_domination_is_per_island(self):
        graph = archipelago()
        p = hit_probability_vector(graph, [0], 6)
        assert p[1] == pytest.approx(1.0)  # same island, forced walk
        np.testing.assert_allclose(p[2:], 0.0)  # other islands

    def test_greedy_spreads_across_islands(self):
        graph = archipelago()
        problem = Problem2(graph, 3, 4)
        result = solve(problem, method="dp")
        islands = {v // 2 for v in result.selected}
        assert islands == {0, 1, 2}

    def test_dangling_heavy_metrics(self):
        graph = dangling_heavy()
        metrics = evaluate_selection(graph, [0], 5)
        # Node 1 hits node 0 in exactly one hop; the 8 dangling nodes never
        # do, so AHT = (1 * 1 + 8 * 5) / 9 and EHN = 2 (self + node 1).
        assert metrics["aht"] == pytest.approx((1 + 8 * 5) / 9)
        assert metrics["ehn"] == pytest.approx(2.0)

    def test_length_zero_everywhere(self):
        """L=0: nobody moves; only S itself is dominated, at time 0."""
        graph = archipelago()
        h = hitting_time_vector(graph, [2], 0)
        np.testing.assert_allclose(h, 0.0)  # T^0 = 0 for every source
        p = hit_probability_vector(graph, [2], 0)
        assert p[2] == 1.0
        assert p.sum() == pytest.approx(1.0)

    def test_k_equals_n_dominates_everything(self):
        graph = dangling_heavy()
        problem = Problem2(graph, graph.num_nodes, 3)
        result = solve(problem, method="approx-fast", num_replicates=4,
                       seed=1)
        p = hit_probability_vector(graph, result.selected, 3)
        np.testing.assert_allclose(p, 1.0)


class TestExtensionsOnDegenerateShapes:
    def test_edge_greedy_on_edgeless_graph(self):
        graph = edgeless()
        result = edge_domination_greedy(graph, 2, 3, num_replicates=4, seed=2)
        assert len(result.selected) == 2
        # Nothing to save: every gain is zero.
        assert all(g == 0 for g in result.gains)

    def test_stochastic_on_single_node(self):
        graph = single_node()
        result = stochastic_approx_greedy(
            graph, 1, 2, num_replicates=3, seed=3
        )
        assert result.selected == (0,)

    def test_simulators_on_edgeless_graph(self):
        graph = edgeless()
        social = simulate_social_browsing(graph, [0], 100, 3, seed=4)
        assert 0.0 <= social.discovery_rate <= 1.0
        p2p = simulate_p2p_search(graph, [0], 100, 3, seed=4)
        assert 0.0 <= p2p.success_rate <= 1.0
        ads = simulate_ad_campaign(graph, [0], 2, 3, seed=4)
        assert ads.reached_users == 1  # only the host itself

    def test_simulators_with_all_nodes_dangling_and_no_hosts(self):
        graph = edgeless()
        report = simulate_social_browsing(graph, (), 50, 3, seed=5)
        assert report.discovery_rate == 0.0
