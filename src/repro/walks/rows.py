"""Roaring-style compressed coverage rows (DESIGN.md §16).

The bit-packed coverage kernel's row substrate is the dense matrix of
:meth:`~repro.walks.index.FlatWalkIndex.packed_hit_rows` — ``n`` rows of
``ceil(nR/64)`` ``uint64`` words, one bit per ``(replicate, walker)``
state.  That is ``n^2 R / 8`` bytes: the last dense-memory wall on the
road to beyond-RAM scale.  This module stores the same rows as roaring
containers over 2^16-bit chunks of the state space:

* **array** containers (type 0) — sorted ``uint16`` in-chunk offsets,
  for sparse chunks (cardinality <= 4096);
* **bitmap** containers (type 1) — the chunk's 1024 ``uint64`` words as
  4096 little-endian ``uint16`` lanes, for dense chunks;
* **run** containers (type 2) — ``[starts..., ends...]`` inclusive
  ``uint16`` interval bounds, for hub rows whose hits are contiguous.

Container choice is deterministic (run iff ``2 * runs < min(card,
4096)``, else array iff ``card <= 4096``, else bitmap) and containers
never span rows, so any row subset re-encodes to exactly the bytes a
full rebuild would produce — that is what makes the dynamic patch
(:meth:`CompressedRows.patched`) and the span-wise out-of-core writer
(:mod:`repro.walks.build`) bit-identical to the in-memory encoder.

The coverage kernels (:meth:`CompressedRows.popcount_rows_masked`,
:meth:`CompressedRows.or_row_into`) run container-wise against the
kernel's *dense* covered bitset — no dense row is ever materialized on
the gain path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "DEFAULT_ROW_CAP_BYTES",
    "ROWS_FORMATS",
    "validate_rows_format",
    "CompressedRows",
    "encode_row_span",
    "scatter_or_bits",
]

#: One budget for dense packed rows, shared by the save side
#: (:mod:`repro.walks.persistence`, the v3 archive row cap) and the
#: kernel side (:mod:`repro.core.coverage_kernel`,
#: ``DEFAULT_MAX_PACKED_BYTES``) so the two can never drift apart.
#: Beyond it, compressed rows are the escape hatch.
DEFAULT_ROW_CAP_BYTES = 1 << 30

#: Row representations the coverage kernel can run on: materialized
#: dense packed rows, per-chunk streaming decode, or roaring containers.
ROWS_FORMATS = ("dense", "stream", "compressed")

CHUNK_BITS = 16
CHUNK_SIZE = 1 << CHUNK_BITS
BITMAP_WORDS = CHUNK_SIZE >> 6  # uint64 words per bitmap container
BITMAP_U16 = BITMAP_WORDS * 4  # uint16 lanes per bitmap container
ARRAY_MAX_CARD = 4096
TYPE_ARRAY = 0
TYPE_BITMAP = 1
TYPE_RUN = 2


def validate_rows_format(name: "str | None") -> "str | None":
    """Return ``name`` if it is a known rows format (``None`` = auto)."""
    if name is None:
        return None
    if name not in ROWS_FORMATS:
        raise ParameterError(
            f"unknown rows format {name!r}; choose from {ROWS_FORMATS}"
        )
    return name


def scatter_or_bits(
    rows: np.ndarray, owners: np.ndarray, states: np.ndarray
) -> None:
    """OR state bits into packed ``uint64`` rows, in place.

    Sets bit ``states[j] & 63`` of word ``states[j] >> 6`` in row
    ``owners[j]`` for every ``j`` — the one packed-bit layout shared by
    :meth:`FlatWalkIndex.packed_hit_rows`, the incremental row patch
    (:func:`repro.core.coverage_kernel.patch_packed_rows`), and the
    container decoder below, kept in one place so they can never drift
    apart.  Implemented as a sort + ``reduceat`` scatter-OR (much faster
    than ``ufunc.at``): group the ``(row, word)`` cells, OR each group's
    bits, write each cell once.
    """
    if states.size == 0:
        return
    words = rows.shape[1]
    cells = owners * words + (states >> 6)
    order = np.argsort(cells, kind="stable")
    sorted_cells = cells[order]
    sorted_bits = np.left_shift(
        np.uint64(1), (states[order] & 63).astype(np.uint64)
    )
    group_starts = np.flatnonzero(
        np.r_[True, sorted_cells[1:] != sorted_cells[:-1]]
    )
    merged = np.bitwise_or.reduceat(sorted_bits, group_starts)
    target = sorted_cells[group_starts]
    rows[target // words, target % words] |= merged


if hasattr(np, "bitwise_count"):

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of ``uint64`` words, as ``int64``."""
        return np.bitwise_count(words).astype(np.int64)

else:  # numpy < 2.0: byte LUT
    _POPCOUNT_LUT = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, None], axis=1
    ).sum(axis=1).astype(np.int64)

    def _popcount_words(words: np.ndarray) -> np.ndarray:
        """Per-element popcount of ``uint64`` words, as ``int64``."""
        as_bytes = np.ascontiguousarray(words).view(np.uint8)
        return _POPCOUNT_LUT[as_bytes].reshape(words.shape + (8,)).sum(
            axis=-1
        )


def _words_to_u16(words: np.ndarray) -> np.ndarray:
    """``(..., W)`` ``uint64`` -> ``(..., 4W)`` little-endian ``uint16``.

    Explicit lane arithmetic instead of ``.view`` so the payload layout
    is byte-order- and alignment-independent.
    """
    out = np.empty(words.shape[:-1] + (words.shape[-1] * 4,), np.uint16)
    for lane in range(4):
        out[..., lane::4] = (
            (words >> np.uint64(16 * lane)) & np.uint64(0xFFFF)
        ).astype(np.uint16)
    return out


def _u16_to_words(data: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_words_to_u16`."""
    words = np.zeros(data.shape[:-1] + (data.shape[-1] // 4,), np.uint64)
    for lane in range(4):
        words |= data[..., lane::4].astype(np.uint64) << np.uint64(16 * lane)
    return words


def _concat_ranges(
    indptr: np.ndarray, ids: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """``(positions, lengths)`` concatenating ``[indptr[i], indptr[i+1])``."""
    indptr = np.asarray(indptr, dtype=np.int64)
    lengths = indptr[ids + 1] - indptr[ids]
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), lengths
    starts = np.repeat(indptr[ids], lengths)
    first = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return starts + np.arange(total, dtype=np.int64) - first, lengths


def _segment_arange(lengths: np.ndarray) -> np.ndarray:
    """``[0..lengths[0]), [0..lengths[1]), ...`` concatenated."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    first = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return np.arange(total, dtype=np.int64) - first


def encode_row_span(
    owners: np.ndarray,
    positions: np.ndarray,
    num_rows: int,
    num_states: int,
) -> "tuple[np.ndarray, ...]":
    """Encode sorted ``(owner, position)`` set bits into containers.

    The streaming half of the codec: callers (the in-memory builder and
    the out-of-core archive writer) hand in one *span* of rows at a time
    — ``owners`` local to the span, the pair stream strictly increasing
    by ``(owner, position)`` — and concatenate the outputs, which is
    exact because containers never span rows.  Returns
    ``(counts, chunk_ids, types, cards, sizes, data)`` where ``counts``
    is containers per row and ``sizes`` is ``uint16`` payload length per
    container.
    """
    owners = np.asarray(owners, dtype=np.int64)
    positions = np.asarray(positions, dtype=np.int64)
    if owners.shape != positions.shape or owners.ndim != 1:
        raise ParameterError("owners and positions must match 1-D shapes")
    counts = np.zeros(num_rows, dtype=np.int64)
    total = positions.size
    if total == 0:
        return (
            counts,
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=np.int32),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.uint16),
        )
    if owners[0] < 0 or owners[-1] >= num_rows:
        raise ParameterError("owners out of range")
    if int(positions.min()) < 0 or int(positions.max()) >= num_states:
        raise ParameterError("positions out of range")
    key = owners * np.int64(max(num_states, 1)) + positions
    if np.any(np.diff(key) <= 0):
        raise ParameterError(
            "(owner, position) pairs must be strictly increasing"
        )
    chunk = positions >> CHUNK_BITS
    offset = positions & (CHUNK_SIZE - 1)
    num_chunks = -(-num_states // CHUNK_SIZE)
    container_key = owners * np.int64(num_chunks) + chunk
    new_container = np.empty(total, dtype=bool)
    new_container[0] = True
    np.not_equal(container_key[1:], container_key[:-1],
                 out=new_container[1:])
    container_start = np.flatnonzero(new_container)
    num_containers = container_start.size
    cards = np.diff(np.r_[container_start, total])
    chunk_ids = chunk[container_start].astype(np.int32)
    container_of = np.cumsum(new_container) - 1
    # Runs: a new run opens at every container boundary or position gap.
    run_start = new_container.copy()
    run_start[1:] |= positions[1:] != positions[:-1] + 1
    run_first = np.flatnonzero(run_start)
    run_container = container_of[run_first]
    runs_per = np.bincount(run_container, minlength=num_containers)
    is_run = 2 * runs_per < np.minimum(cards, BITMAP_U16)
    is_array = ~is_run & (cards <= ARRAY_MAX_CARD)
    types = np.where(
        is_run, TYPE_RUN, np.where(is_array, TYPE_ARRAY, TYPE_BITMAP)
    ).astype(np.uint8)
    sizes = np.where(
        is_run, 2 * runs_per, np.where(is_array, cards, BITMAP_U16)
    ).astype(np.int64)
    data_ptr = np.zeros(num_containers + 1, dtype=np.int64)
    np.cumsum(sizes, out=data_ptr[1:])
    data = np.zeros(int(data_ptr[-1]), dtype=np.uint16)
    local = np.arange(total, dtype=np.int64) - np.repeat(
        container_start, cards
    )
    kind_of = types[container_of]

    in_array = kind_of == TYPE_ARRAY
    if in_array.any():
        dest = data_ptr[container_of[in_array]] + local[in_array]
        data[dest] = offset[in_array].astype(np.uint16)

    if is_run.any():
        run_len = np.diff(np.r_[run_first, total])
        first_run = np.zeros(num_containers, dtype=np.int64)
        np.cumsum(runs_per[:-1], out=first_run[1:])
        local_run = np.arange(run_first.size, dtype=np.int64) - first_run[
            run_container
        ]
        pick = is_run[run_container]
        base = data_ptr[run_container[pick]]
        width = runs_per[run_container[pick]]
        data[base + local_run[pick]] = offset[run_first[pick]].astype(
            np.uint16
        )
        data[base + width + local_run[pick]] = offset[
            run_first[pick] + run_len[pick] - 1
        ].astype(np.uint16)

    bitmap_ids = np.flatnonzero(types == TYPE_BITMAP)
    if bitmap_ids.size:
        in_bitmap = kind_of == TYPE_BITMAP
        slot = np.full(num_containers, -1, dtype=np.int64)
        slot[bitmap_ids] = np.arange(bitmap_ids.size, dtype=np.int64)
        words = np.zeros(bitmap_ids.size * BITMAP_WORDS, dtype=np.uint64)
        cell = slot[container_of[in_bitmap]] * BITMAP_WORDS + (
            offset[in_bitmap] >> 6
        )
        bit = np.left_shift(
            np.uint64(1), (offset[in_bitmap] & 63).astype(np.uint64)
        )
        starts = np.flatnonzero(np.r_[True, cell[1:] != cell[:-1]])
        words[cell[starts]] = np.bitwise_or.reduceat(bit, starts)
        payload = _words_to_u16(words.reshape(bitmap_ids.size, BITMAP_WORDS))
        dest = (
            data_ptr[bitmap_ids][:, None]
            + np.arange(BITMAP_U16, dtype=np.int64)[None, :]
        )
        data[dest.ravel()] = payload.ravel()

    counts = np.bincount(
        owners[container_start], minlength=num_rows
    ).astype(np.int64)
    return counts, chunk_ids, types, cards.astype(np.int32), sizes, data


class CompressedRows:
    """Per-candidate coverage rows as roaring containers.

    Flat CSR-of-containers layout — every component is a plain numpy
    array, so the whole structure memory-maps straight out of a v3
    archive:

    * ``row_ptr``  — ``int64 (num_rows + 1,)`` container span per row;
    * ``chunk_ids`` — ``int32`` 2^16-bit chunk index per container;
    * ``types``     — ``uint8`` 0=array, 1=bitmap, 2=run;
    * ``cards``     — ``int32`` set bits per container;
    * ``data_ptr``  — ``int64 (C + 1,)`` payload span per container;
    * ``data``      — ``uint16`` concatenated payloads.
    """

    __slots__ = (
        "num_rows",
        "num_states",
        "row_ptr",
        "chunk_ids",
        "types",
        "cards",
        "data_ptr",
        "data",
    )

    #: v3 archive array names, in layout order.
    ARRAY_NAMES = (
        "crow_ptr",
        "crow_chunks",
        "crow_types",
        "crow_cards",
        "crow_dataptr",
        "crow_data",
    )

    def __init__(
        self,
        num_rows: int,
        num_states: int,
        row_ptr: np.ndarray,
        chunk_ids: np.ndarray,
        types: np.ndarray,
        cards: np.ndarray,
        data_ptr: np.ndarray,
        data: np.ndarray,
    ):
        self.num_rows = int(num_rows)
        self.num_states = int(num_states)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.chunk_ids = np.asarray(chunk_ids, dtype=np.int32)
        self.types = np.asarray(types, dtype=np.uint8)
        self.cards = np.asarray(cards, dtype=np.int32)
        self.data_ptr = np.asarray(data_ptr, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.uint16)
        if self.num_rows < 0 or self.num_states < 0:
            raise ParameterError("compressed rows shape must be >= 0")
        if self.row_ptr.shape != (self.num_rows + 1,) or (
            self.num_rows >= 0 and int(self.row_ptr[0]) != 0
        ):
            raise ParameterError("compressed rows row_ptr is malformed")
        containers = int(self.row_ptr[-1])
        if not (
            self.chunk_ids.shape
            == self.types.shape
            == self.cards.shape
            == (containers,)
        ):
            raise ParameterError("compressed rows container arrays disagree")
        if self.data_ptr.shape != (containers + 1,) or int(
            self.data_ptr[-1]
        ) != self.data.size:
            raise ParameterError("compressed rows data_ptr is malformed")

    # -- constructors --------------------------------------------------
    @classmethod
    def from_sorted_positions(
        cls,
        owners: np.ndarray,
        positions: np.ndarray,
        num_rows: int,
        num_states: int,
    ) -> "CompressedRows":
        """Encode a strictly increasing ``(owner, position)`` stream."""
        counts, chunk_ids, types, cards, sizes, data = encode_row_span(
            owners, positions, num_rows, num_states
        )
        row_ptr = np.zeros(num_rows + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptr[1:])
        data_ptr = np.zeros(types.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=data_ptr[1:])
        return cls(
            num_rows, num_states, row_ptr, chunk_ids, types, cards,
            data_ptr, data,
        )

    @classmethod
    def from_packed(
        cls, rows: np.ndarray, num_states: int
    ) -> "CompressedRows":
        """Encode dense packed ``uint64`` rows (test/bench convenience).

        Materializes one byte per bit, so only sensible where the dense
        rows already fit; the real encode paths go through
        :func:`encode_row_span` on entry streams.
        """
        rows = np.ascontiguousarray(rows, dtype=np.uint64)
        if rows.ndim != 2:
            raise ParameterError("packed rows must be 2-D")
        num_rows, words = rows.shape
        if words != (num_states + 63) >> 6:
            raise ParameterError(
                f"packed rows have {words} words; num_states={num_states} "
                f"needs {(num_states + 63) >> 6}"
            )
        if rows.size == 0:
            return cls.from_sorted_positions(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                num_rows, num_states,
            )
        bits = np.unpackbits(rows.view(np.uint8), axis=1, bitorder="little")
        owners, positions = np.nonzero(bits[:, :num_states])
        return cls.from_sorted_positions(
            owners.astype(np.int64), positions.astype(np.int64),
            num_rows, num_states,
        )

    @classmethod
    def from_arrays(
        cls, arrays: dict, num_rows: int, num_states: int
    ) -> "CompressedRows":
        """Rebuild from the archive arrays of :meth:`arrays`."""
        missing = [name for name in cls.ARRAY_NAMES if name not in arrays]
        if missing:
            raise ParameterError(
                f"compressed rows are missing archive arrays: {missing}"
            )
        return cls(
            num_rows,
            num_states,
            arrays["crow_ptr"],
            arrays["crow_chunks"],
            arrays["crow_types"],
            arrays["crow_cards"],
            arrays["crow_dataptr"],
            arrays["crow_data"],
        )

    def arrays(self) -> "dict[str, np.ndarray]":
        """The archive arrays, keyed by :attr:`ARRAY_NAMES`."""
        return {
            "crow_ptr": self.row_ptr,
            "crow_chunks": self.chunk_ids,
            "crow_types": self.types,
            "crow_cards": self.cards,
            "crow_dataptr": self.data_ptr,
            "crow_data": self.data,
        }

    # -- shape ---------------------------------------------------------
    @property
    def words(self) -> int:
        """``uint64`` words per dense packed row."""
        return (self.num_states + 63) >> 6

    @property
    def num_chunks(self) -> int:
        return -(-self.num_states // CHUNK_SIZE)

    @property
    def num_containers(self) -> int:
        return int(self.row_ptr[-1])

    @property
    def nbytes(self) -> int:
        """Total bytes across all component arrays."""
        return (
            self.row_ptr.nbytes
            + self.chunk_ids.nbytes
            + self.types.nbytes
            + self.cards.nbytes
            + self.data_ptr.nbytes
            + self.data.nbytes
        )

    def equals(self, other: "CompressedRows") -> bool:
        """Exact structural equality (same containers, same payloads)."""
        return (
            self.num_rows == other.num_rows
            and self.num_states == other.num_states
            and np.array_equal(self.row_ptr, other.row_ptr)
            and np.array_equal(self.chunk_ids, other.chunk_ids)
            and np.array_equal(self.types, other.types)
            and np.array_equal(self.cards, other.cards)
            and np.array_equal(self.data_ptr, other.data_ptr)
            and np.array_equal(self.data, other.data)
        )

    # -- container payload helpers ------------------------------------
    def _run_bounds(
        self, ids: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """``(starts, ends, run_of)`` for run containers ``ids``.

        Global inclusive bit positions per run; ``run_of`` maps each run
        back to its index within ``ids``.
        """
        sizes = self.data_ptr[ids + 1] - self.data_ptr[ids]
        num_runs = sizes >> 1
        base = np.repeat(self.data_ptr[ids], num_runs)
        local = _segment_arange(num_runs)
        width = np.repeat(num_runs, num_runs)
        starts16 = self.data[base + local].astype(np.int64)
        ends16 = self.data[base + width + local].astype(np.int64)
        chunk_base = np.repeat(
            self.chunk_ids[ids].astype(np.int64) << CHUNK_BITS, num_runs
        )
        run_of = np.repeat(np.arange(ids.size, dtype=np.int64), num_runs)
        return chunk_base + starts16, chunk_base + ends16, run_of

    def _bitmap_words(self, ids: np.ndarray) -> np.ndarray:
        """``(len(ids), BITMAP_WORDS)`` ``uint64`` payload words."""
        src = (
            self.data_ptr[ids][:, None]
            + np.arange(BITMAP_U16, dtype=np.int64)[None, :]
        )
        return _u16_to_words(self.data[src])

    # -- kernels -------------------------------------------------------
    def decode_rows(self, lo: int, hi: int) -> np.ndarray:
        """Dense packed ``uint64`` rows for candidates ``[lo, hi)``.

        Bit-for-bit the matrix slice ``packed_hit_rows()[lo:hi]`` —
        pinned by the round-trip tests, and what the kernel's stream
        fallbacks compare against.
        """
        if not 0 <= lo <= hi <= self.num_rows:
            raise ParameterError(f"row range [{lo}, {hi}) out of bounds")
        words = self.words
        out = np.zeros((hi - lo, words), dtype=np.uint64)
        clo, chi = int(self.row_ptr[lo]), int(self.row_ptr[hi])
        if clo == chi:
            return out
        types = self.types[clo:chi]
        chunks = self.chunk_ids[clo:chi].astype(np.int64)
        row_of = (
            np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(self.row_ptr[lo : hi + 1]),
            )
            - lo
        )
        arr = np.flatnonzero(types == TYPE_ARRAY)
        if arr.size:
            src, lens = _concat_ranges(self.data_ptr, arr + clo)
            bits = (
                np.repeat(chunks[arr] << CHUNK_BITS, lens)
                + self.data[src]
            )
            scatter_or_bits(out, np.repeat(row_of[arr], lens), bits)
        run = np.flatnonzero(types == TYPE_RUN)
        if run.size:
            starts, ends, run_of = self._run_bounds(run + clo)
            lens = ends - starts + 1
            bits = np.repeat(starts, lens) + _segment_arange(lens)
            scatter_or_bits(
                out, np.repeat(row_of[run][run_of], lens), bits
            )
        bitmap = np.flatnonzero(types == TYPE_BITMAP)
        if bitmap.size:
            payload = self._bitmap_words(bitmap + clo)
            base = chunks[bitmap] * BITMAP_WORDS
            valid = np.minimum(BITMAP_WORDS, words - base)
            for width in np.unique(valid):
                grp = np.flatnonzero(valid == width)
                cols = (
                    base[grp][:, None]
                    + np.arange(width, dtype=np.int64)[None, :]
                )
                # Each (row, chunk) pair appears once, so the cells are
                # unique and the buffered fancy |= is exact.
                out[row_of[bitmap[grp]][:, None], cols] |= payload[grp][
                    :, :width
                ]
        return out

    def popcount_rows_masked(
        self, covered: np.ndarray, lo: int = 0, hi: "int | None" = None
    ) -> np.ndarray:
        """Per-row ``popcount(row & ~covered)`` for rows ``[lo, hi)``.

        Container-wise against the kernel's dense covered bitset: the
        uncovered count is ``card - |container ∩ covered|``, summed per
        row, with no dense row decode.  ``covered`` is the packed
        ``uint64`` state bitset (padding bits zero, the kernel's
        invariant).
        """
        if hi is None:
            hi = self.num_rows
        if not 0 <= lo <= hi <= self.num_rows:
            raise ParameterError(f"row range [{lo}, {hi}) out of bounds")
        words = self.words
        if covered.shape != (words,):
            raise ParameterError(
                f"covered bitset has shape {covered.shape}; "
                f"expected ({words},)"
            )
        out = np.zeros(hi - lo, dtype=np.int64)
        clo, chi = int(self.row_ptr[lo]), int(self.row_ptr[hi])
        if clo == chi:
            return out
        padded_words = self.num_chunks * BITMAP_WORDS
        cov = covered
        if padded_words != words:
            cov = np.zeros(padded_words, dtype=np.uint64)
            cov[:words] = covered
        types = self.types[clo:chi]
        chunks = self.chunk_ids[clo:chi].astype(np.int64)
        cards = self.cards[clo:chi].astype(np.int64)
        row_of = (
            np.repeat(
                np.arange(lo, hi, dtype=np.int64),
                np.diff(self.row_ptr[lo : hi + 1]),
            )
            - lo
        )
        covered_in = np.zeros(chi - clo, dtype=np.int64)
        arr = np.flatnonzero(types == TYPE_ARRAY)
        if arr.size:
            src, lens = _concat_ranges(self.data_ptr, arr + clo)
            bits = (
                np.repeat(chunks[arr] << CHUNK_BITS, lens)
                + self.data[src]
            )
            hit = (
                (cov[bits >> 6] >> (bits & 63).astype(np.uint64))
                & np.uint64(1)
            ).astype(np.int64)
            covered_in[arr] = np.add.reduceat(hit, np.cumsum(lens) - lens)
        run = np.flatnonzero(types == TYPE_RUN)
        if run.size:
            prefix = np.zeros(padded_words + 1, dtype=np.int64)
            np.cumsum(_popcount_words(cov), out=prefix[1:])
            starts, ends, run_of = self._run_bounds(run + clo)
            word_lo = starts >> 6
            word_hi = ends >> 6
            mask_lo = np.left_shift(
                ~np.uint64(0), (starts & 63).astype(np.uint64)
            )
            mask_hi = np.right_shift(
                ~np.uint64(0), (63 - (ends & 63)).astype(np.uint64)
            )
            one_word = word_lo == word_hi
            per_run = np.where(
                one_word,
                _popcount_words(cov[word_lo] & mask_lo & mask_hi),
                _popcount_words(cov[word_lo] & mask_lo)
                + _popcount_words(cov[word_hi] & mask_hi)
                + prefix[word_hi]
                - prefix[word_lo + 1],
            )
            # float64 weights are exact here: counts stay far below 2^53.
            covered_in[run] = np.bincount(
                run_of, weights=per_run, minlength=run.size
            ).astype(np.int64)
        bitmap = np.flatnonzero(types == TYPE_BITMAP)
        if bitmap.size:
            payload = self._bitmap_words(bitmap + clo)
            windows = cov[
                (chunks[bitmap] * BITMAP_WORDS)[:, None]
                + np.arange(BITMAP_WORDS, dtype=np.int64)[None, :]
            ]
            covered_in[bitmap] = _popcount_words(payload & windows).sum(
                axis=1
            )
        return np.bincount(
            row_of, weights=(cards - covered_in), minlength=hi - lo
        ).astype(np.int64)

    def or_row_into(self, row: int, covered: np.ndarray) -> None:
        """``covered |= rows[row]``, container-wise, in place."""
        if not 0 <= row < self.num_rows:
            raise ParameterError(f"row {row} out of range")
        words = self.words
        if covered.shape != (words,):
            raise ParameterError(
                f"covered bitset has shape {covered.shape}; "
                f"expected ({words},)"
            )
        clo, chi = int(self.row_ptr[row]), int(self.row_ptr[row + 1])
        if clo == chi:
            return
        ids = np.arange(clo, chi, dtype=np.int64)
        types = self.types[clo:chi]
        arr = ids[types == TYPE_ARRAY]
        if arr.size:
            src, lens = _concat_ranges(self.data_ptr, arr)
            bits = (
                np.repeat(self.chunk_ids[arr].astype(np.int64) << CHUNK_BITS,
                          lens)
                + self.data[src]
            )
            word = bits >> 6
            bit = np.left_shift(
                np.uint64(1), (bits & 63).astype(np.uint64)
            )
            # bits ascend within the row, so words are grouped already.
            starts = np.flatnonzero(np.r_[True, word[1:] != word[:-1]])
            covered[word[starts]] |= np.bitwise_or.reduceat(bit, starts)
        run = ids[types == TYPE_RUN]
        if run.size:
            starts_b, ends_b, _ = self._run_bounds(run)
            word_lo = starts_b >> 6
            word_hi = ends_b >> 6
            mask_lo = np.left_shift(
                ~np.uint64(0), (starts_b & 63).astype(np.uint64)
            )
            mask_hi = np.right_shift(
                ~np.uint64(0), (63 - (ends_b & 63)).astype(np.uint64)
            )
            one_word = word_lo == word_hi
            # Adjacent runs can share a boundary word, so boundary ORs
            # go through ufunc.at; interior words are disjoint.
            np.bitwise_or.at(
                covered, word_lo[one_word],
                mask_lo[one_word] & mask_hi[one_word],
            )
            multi = ~one_word
            np.bitwise_or.at(covered, word_lo[multi], mask_lo[multi])
            np.bitwise_or.at(covered, word_hi[multi], mask_hi[multi])
            interior_lens = word_hi[multi] - word_lo[multi] - 1
            if interior_lens.size and interior_lens.sum():
                interior = (
                    np.repeat(word_lo[multi] + 1, interior_lens)
                    + _segment_arange(interior_lens)
                )
                covered[interior] = ~np.uint64(0)
        bitmap = ids[types == TYPE_BITMAP]
        if bitmap.size:
            payload = self._bitmap_words(bitmap)
            base = self.chunk_ids[bitmap].astype(np.int64) * BITMAP_WORDS
            valid = np.minimum(BITMAP_WORDS, words - base)
            for width in np.unique(valid):
                grp = np.flatnonzero(valid == width)
                covered[
                    base[grp][:, None]
                    + np.arange(width, dtype=np.int64)[None, :]
                ] |= payload[grp][:, :width]

    # -- dynamic patch -------------------------------------------------
    def patched(
        self, index, nodes, include_self: bool = True
    ) -> "CompressedRows":
        """A new :class:`CompressedRows` with ``nodes`` re-encoded.

        Container-local rebuild for the dynamic path: only the changed
        rows' containers are re-encoded from ``index``'s current
        entries (plus hop-0 self states); every other container's
        metadata and payload is splice-copied.  Bit-identical to a full
        re-encode because containers never span rows and the codec is
        deterministic per container.  The receiver is not mutated, so
        archive-backed (read-only) instances patch safely.
        """
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size == 0:
            return self
        if nodes[0] < 0 or nodes[-1] >= self.num_rows:
            raise ParameterError("patched nodes out of range")
        if (
            index.num_nodes != self.num_rows
            or index.num_states != self.num_states
        ):
            raise ParameterError(
                "index shape does not match the compressed rows"
            )
        pos_idx, lengths = _concat_ranges(
            np.asarray(index.indptr, dtype=np.int64), nodes
        )
        states = np.asarray(index.state)[pos_idx].astype(np.int64)
        owners = np.repeat(np.arange(nodes.size, dtype=np.int64), lengths)
        if include_self:
            reps = np.arange(index.num_replicates, dtype=np.int64)
            self_states = (
                nodes[None, :] + np.int64(index.num_nodes) * reps[:, None]
            ).ravel()
            states = np.concatenate([states, self_states])
            owners = np.concatenate(
                [owners,
                 np.tile(np.arange(nodes.size, dtype=np.int64), reps.size)]
            )
        order = np.argsort(
            owners * np.int64(max(self.num_states, 1)) + states
        )
        counts_new, chunk_new, types_new, cards_new, sizes_new, data_new = (
            encode_row_span(
                owners[order], states[order], nodes.size, self.num_states
            )
        )
        old_counts = np.diff(self.row_ptr)
        is_patched = np.zeros(self.num_rows, dtype=bool)
        is_patched[nodes] = True
        old_row_of = np.repeat(
            np.arange(self.num_rows, dtype=np.int64), old_counts
        )
        kept = np.flatnonzero(~is_patched[old_row_of])
        final_counts = old_counts.copy()
        final_counts[nodes] = counts_new
        row_ptr = np.zeros(self.num_rows + 1, dtype=np.int64)
        np.cumsum(final_counts, out=row_ptr[1:])
        total = int(row_ptr[-1])
        old_local = np.arange(
            int(old_counts.sum()), dtype=np.int64
        ) - np.repeat(self.row_ptr[:-1], old_counts)
        dest_kept = row_ptr[old_row_of[kept]] + old_local[kept]
        dest_new = row_ptr[np.repeat(nodes, counts_new)] + _segment_arange(
            counts_new
        )
        chunk_ids = np.empty(total, dtype=np.int32)
        types = np.empty(total, dtype=np.uint8)
        cards = np.empty(total, dtype=np.int32)
        sizes = np.empty(total, dtype=np.int64)
        chunk_ids[dest_kept] = self.chunk_ids[kept]
        chunk_ids[dest_new] = chunk_new
        types[dest_kept] = self.types[kept]
        types[dest_new] = types_new
        cards[dest_kept] = self.cards[kept]
        cards[dest_new] = cards_new
        old_sizes = np.diff(self.data_ptr)
        sizes[dest_kept] = old_sizes[kept]
        sizes[dest_new] = sizes_new
        data_ptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(sizes, out=data_ptr[1:])
        data = np.empty(int(data_ptr[-1]), dtype=np.uint16)
        src_kept, kept_lens = _concat_ranges(self.data_ptr, kept)
        data[
            np.repeat(data_ptr[dest_kept], kept_lens)
            + _segment_arange(kept_lens)
        ] = self.data[src_kept]
        data[
            np.repeat(data_ptr[dest_new], sizes_new)
            + _segment_arange(sizes_new)
        ] = data_new
        return CompressedRows(
            self.num_rows, self.num_states, row_ptr, chunk_ids, types,
            cards, data_ptr, data,
        )
