"""Dynamic-graph subsystem tests (DESIGN.md §9).

The load-bearing property, pinned both deterministically and with a
hypothesis sweep: *incremental update ∘ arbitrary edit batches ==
from-scratch rebuild, bit-identically* — same trajectories, same entry
arrays, same packed bitset rows, same greedy selections — across all
three walk engines and both gain backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage_kernel import patch_packed_rows
from repro.errors import GraphFormatError, ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.builder import GraphBuilder
from repro.graphs.generators import power_law_graph, ring_graph, star_graph
from repro.simulate import simulate_p2p_churn
from repro.walks.backends import get_engine
from repro.walks.index import FlatWalkIndex, walker_major_starts
from repro.walks.persistence import (
    graph_fingerprint,
    index_provenance,
    load_dynamic_index,
    load_index,
    save_dynamic_index,
    save_index,
)
from repro.dynamic import (
    DynamicGraph,
    DynamicWalkIndex,
    TraceOp,
    churn_replay,
    edit_graph,
    expand_membership,
    min_breaking_edges,
    parse_trace,
    robust_greedy,
)

ENGINES = ("numpy", "csr", "sharded", "multiproc")


def assert_index_identical(a: DynamicWalkIndex, b: DynamicWalkIndex) -> None:
    """Bit-identity of two dynamic indexes (the tentpole contract)."""
    assert a.graph == b.graph
    np.testing.assert_array_equal(a.walks, b.walks)
    np.testing.assert_array_equal(a.flat.indptr, b.flat.indptr)
    np.testing.assert_array_equal(a.flat.state, b.flat.state)
    np.testing.assert_array_equal(a.flat.hop, b.flat.hop)
    assert a.flat.state.dtype == b.flat.state.dtype
    assert a.flat.hop.dtype == b.flat.hop.dtype


def random_edits(graph: Graph, rng: np.random.Generator, inserts: int,
                 deletes: int) -> tuple[list, list]:
    """A valid random edit batch for ``graph``."""
    edge_array = graph.edge_array()
    deletes = min(deletes, len(edge_array))
    dels = [
        tuple(map(int, edge_array[i]))
        for i in rng.choice(len(edge_array), size=deletes, replace=False)
    ] if deletes else []
    ins: list[tuple[int, int]] = []
    n = graph.num_nodes
    attempts = 0
    while len(ins) < inserts and attempts < 200:
        attempts += 1
        u, v = (int(x) for x in rng.integers(0, n, 2))
        edge = (min(u, v), max(u, v))
        if u != v and not graph.has_edge(u, v) and edge not in ins:
            ins.append(edge)
    return ins, dels


# ----------------------------------------------------------------------
class TestDynamicGraph:
    def test_apply_and_journal(self):
        graph = ring_graph(8)
        dgraph = DynamicGraph(graph)
        batch = dgraph.apply_batch(inserts=[(0, 4)], deletes=[(0, 1)])
        assert dgraph.epoch == 1
        assert batch.epoch == 1
        assert batch.inserts == ((0, 4),)
        assert batch.deletes == ((0, 1),)
        assert dgraph.has_edge(0, 4) and not dgraph.has_edge(0, 1)
        assert dgraph.num_edges == graph.num_edges
        assert list(batch.modified_nodes()) == [0, 1, 4]

    def test_snapshot_matches_from_scratch_build(self):
        graph = power_law_graph(40, 120, seed=0)
        dgraph = DynamicGraph(graph)
        rng = np.random.default_rng(1)
        for _ in range(4):
            ins, dels = random_edits(dgraph.graph, rng, 3, 3)
            dgraph.apply_batch(ins, dels)
        builder = GraphBuilder()
        builder.add_edges(list(dgraph.graph.edges()))
        builder.touch_node(graph.num_nodes - 1)
        assert dgraph.graph == builder.build()

    def test_strict_validation(self):
        dgraph = DynamicGraph(ring_graph(6))
        with pytest.raises(ParameterError):
            dgraph.apply_batch(deletes=[(0, 3)])  # not an edge
        with pytest.raises(ParameterError):
            dgraph.apply_batch(inserts=[(0, 1)])  # already an edge
        with pytest.raises(ParameterError):
            dgraph.apply_batch(inserts=[(2, 2)])  # self-loop
        with pytest.raises(ParameterError):
            dgraph.apply_batch(inserts=[(0, 9)])  # out of range
        with pytest.raises(ParameterError):
            dgraph.apply_batch(inserts=[(0, 3)], deletes=[(3, 0)])  # overlap
        with pytest.raises(ParameterError):
            dgraph.apply_batch(inserts=[(0, 3), (3, 0)])  # duplicate
        assert dgraph.epoch == 0  # nothing was applied

    def test_remove_node_edges(self):
        dgraph = DynamicGraph(star_graph(5))
        batch = dgraph.remove_node_edges(0)
        assert len(batch.deletes) == 5
        assert dgraph.num_edges == 0

    def test_edit_graph_roundtrip(self):
        graph = power_law_graph(30, 90, seed=2)
        edge = tuple(map(int, graph.edge_array()[7]))
        removed = edit_graph(graph, deletes=[edge])
        assert removed.num_edges == graph.num_edges - 1
        assert edit_graph(removed, inserts=[edge]) == graph


# ----------------------------------------------------------------------
class TestBuildParity:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_walks_match_engine_batch(self, engine):
        graph = power_law_graph(50, 150, seed=3)
        dyn = DynamicWalkIndex.build(graph, 5, 6, seed=11, engine=engine)
        starts = walker_major_starts(graph.num_nodes, 6)
        reference = get_engine(engine).batch_walks(
            graph, starts, 5, seed=np.random.default_rng(11)
        )
        np.testing.assert_array_equal(dyn.walks, reference)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_entries_match_static_builder(self, engine):
        """Same walks => same records as FlatWalkIndex.build (the orders
        differ within hit-node groups; the grouped sets must not)."""
        graph = power_law_graph(50, 150, seed=4)
        dyn = DynamicWalkIndex.build(graph, 4, 5, seed=12, engine=engine)
        static = FlatWalkIndex.build(graph, 4, 5, seed=12, engine=engine)
        assert dyn.flat.same_entries(static)

    def test_rejects_generator_seed(self):
        graph = ring_graph(6)
        with pytest.raises(ParameterError):
            DynamicWalkIndex.build(
                graph, 3, 2, seed=np.random.default_rng(0)
            )

    def test_selections_match_static_index(self):
        """A dynamic index is a drop-in index for Algorithm 6."""
        graph = power_law_graph(60, 180, seed=5)
        dyn = DynamicWalkIndex.build(graph, 5, 8, seed=13)
        static = FlatWalkIndex.build(graph, 5, 8, seed=13)
        for objective in ("f1", "f2"):
            a = approx_greedy_fast(
                graph, 6, 5, index=dyn.flat, objective=objective
            )
            b = approx_greedy_fast(
                graph, 6, 5, index=static, objective=objective
            )
            assert a.selected == b.selected
            assert a.gains == b.gains


# ----------------------------------------------------------------------
class TestIncrementalEqualsRebuild:
    # Small batches on a larger graph run the sorted-merge splice; large
    # batches on a small graph cross the ~25%-dirty threshold into the
    # re-extraction fallback.  Both must be bit-identical to a rebuild.
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "nodes,edges,edits", [(300, 900, 2), (70, 210, 4)]
    )
    def test_multi_batch_bit_identity(self, engine, nodes, edges, edits):
        graph = power_law_graph(nodes, edges, seed=6)
        dyn = DynamicWalkIndex.build(graph, 5, 6, seed=21, engine=engine)
        dgraph = DynamicGraph(graph)
        rng = np.random.default_rng(22)
        for _ in range(3):
            ins, dels = random_edits(dgraph.graph, rng, edits, edits)
            dgraph.apply_batch(ins, dels)
        stats = dyn.sync(dgraph)
        assert stats.batches == 3
        rebuilt = DynamicWalkIndex.build(
            dgraph.graph, 5, 6, seed=21, engine=engine
        )
        assert_index_identical(dyn, rebuilt)

    @pytest.mark.parametrize("gain_backend", ("entries", "bitset"))
    def test_selections_identical_after_update(self, gain_backend):
        graph = power_law_graph(70, 210, seed=7)
        dyn = DynamicWalkIndex.build(graph, 5, 8, seed=23)
        dgraph = DynamicGraph(graph)
        rng = np.random.default_rng(24)
        ins, dels = random_edits(graph, rng, 5, 5)
        dgraph.apply_batch(ins, dels)
        dyn.sync(dgraph)
        rebuilt = DynamicWalkIndex.build(dgraph.graph, 5, 8, seed=23)
        for objective in ("f1", "f2"):
            a = approx_greedy_fast(
                dgraph.graph, 8, 5, index=dyn.flat, objective=objective,
                gain_backend=gain_backend,
            )
            b = approx_greedy_fast(
                dgraph.graph, 8, 5, index=rebuilt.flat, objective=objective,
                gain_backend=gain_backend,
            )
            assert a.selected == b.selected
            assert a.gains == b.gains

    def test_packed_rows_patched_in_place(self):
        # Small edit batch on a big enough graph: the splice path must
        # patch the materialized bitset rows rather than rebuild them.
        graph = power_law_graph(200, 600, seed=8)
        dyn = DynamicWalkIndex.build(graph, 4, 6, seed=25)
        rows = dyn.packed_hit_rows()
        dgraph = DynamicGraph(graph)
        rng = np.random.default_rng(26)
        ins, dels = random_edits(graph, rng, 1, 1)
        dgraph.apply_batch(ins, dels)
        stats = dyn.sync(dgraph)
        assert stats.resampled_rows * 4 <= dyn.walks.shape[0], (
            "edit batch unexpectedly crossed into the fallback path"
        )
        assert dyn.packed_hit_rows() is rows  # patched, not rebuilt
        fresh = dyn.flat.packed_hit_rows(include_self=True)
        np.testing.assert_array_equal(rows, fresh)

    def test_patch_packed_rows_rejects_bad_shape(self):
        dyn = DynamicWalkIndex.build(ring_graph(8), 3, 2, seed=0)
        with pytest.raises(ParameterError):
            patch_packed_rows(
                np.zeros((3, 1), dtype=np.uint64), dyn.flat, [0]
            )

    def test_leave_rejoin_restores_index_exactly(self):
        """Edits that cancel out must restore the index bit-for-bit."""
        graph = power_law_graph(40, 120, seed=9)
        dyn = DynamicWalkIndex.build(graph, 5, 6, seed=27)
        original_walks = dyn.walks.copy()
        original_state = dyn.flat.state.copy()
        dgraph = DynamicGraph(graph)
        edges = [(3, int(v)) for v in graph.neighbors(3)]
        dgraph.apply_batch(deletes=edges)
        dgraph.apply_batch(inserts=edges)
        dyn.sync(dgraph)
        assert dgraph.graph == graph
        np.testing.assert_array_equal(dyn.walks, original_walks)
        np.testing.assert_array_equal(dyn.flat.state, original_state)

    def test_sync_validates_ownership(self):
        dyn = DynamicWalkIndex.build(ring_graph(8), 3, 2, seed=1)
        with pytest.raises(ParameterError):
            dyn.sync(DynamicGraph(ring_graph(9)))


# ----------------------------------------------------------------------
NODE_COUNT = 10

graph_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
        st.integers(min_value=0, max_value=NODE_COUNT - 1),
    ),
    min_size=4,
    max_size=30,
)


@pytest.mark.slow
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    edges=graph_edges,
    engine=st.sampled_from(ENGINES),
    data=st.data(),
)
def test_property_incremental_equals_rebuild(edges, engine, data):
    """incremental ∘ arbitrary edit batches == full rebuild, bit-identical."""
    builder = GraphBuilder()
    builder.add_edges(edges)
    builder.touch_node(NODE_COUNT - 1)
    graph = builder.build()
    dyn = DynamicWalkIndex.build(graph, 4, 3, seed=5, engine=engine)
    dgraph = DynamicGraph(graph)
    num_batches = data.draw(st.integers(min_value=1, max_value=3))
    for _ in range(num_batches):
        current = dgraph.graph
        present = [tuple(map(int, e)) for e in current.edge_array()]
        absent = [
            (u, v)
            for u in range(NODE_COUNT)
            for v in range(u + 1, NODE_COUNT)
            if not current.has_edge(u, v)
        ]
        dels = data.draw(
            st.lists(st.sampled_from(present), unique=True, max_size=4)
            if present else st.just([])
        )
        ins = data.draw(
            st.lists(st.sampled_from(absent), unique=True, max_size=4)
            if absent else st.just([])
        )
        dgraph.apply_batch(ins, dels)
    dyn.sync(dgraph)
    rebuilt = DynamicWalkIndex.build(dgraph.graph, 4, 3, seed=5, engine=engine)
    assert_index_identical(dyn, rebuilt)


# ----------------------------------------------------------------------
class TestRobustGreedy:
    def test_q0_equals_approx_f2(self):
        graph = power_law_graph(60, 180, seed=10)
        dyn = DynamicWalkIndex.build(graph, 4, 8, seed=31)
        robust = robust_greedy(graph, 7, 4, q=0, index=dyn)
        reference = approx_greedy_fast(
            graph, 7, 4, index=dyn.flat, objective="f2"
        )
        assert robust.selected == reference.selected
        assert robust.gains == reference.gains

    def test_q_positive_runs_and_differs_sanely(self):
        graph = power_law_graph(60, 180, seed=11)
        dyn = DynamicWalkIndex.build(graph, 4, 8, seed=32)
        result = robust_greedy(graph, 6, 4, q=3, index=dyn)
        assert len(result.selected) == 6
        assert len(set(result.selected)) == 6
        assert result.params["q"] == 3
        # Robust gains can never exceed the unconstrained F2 gains.
        reference = approx_greedy_fast(
            graph, 6, 4, index=dyn.flat, objective="f2"
        )
        assert result.gains[0] <= reference.gains[0]

    def test_parameter_validation(self):
        graph = ring_graph(8)
        with pytest.raises(ParameterError):
            robust_greedy(graph, 99, 3, q=1)
        with pytest.raises(ParameterError):
            robust_greedy(graph, 2, 3, q=-1)


class TestMinBreakingEdges:
    def test_attack_reaches_threshold(self):
        graph = power_law_graph(60, 180, seed=12)
        dyn = DynamicWalkIndex.build(graph, 4, 8, seed=33)
        placement = approx_greedy_fast(
            graph, 5, 4, index=dyn.flat, objective="f2"
        ).selected
        report = min_breaking_edges(
            graph, placement, 4, index=dyn, threshold=0.5
        )
        fractions = (report.baseline_fraction,) + report.coverage_fractions
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))
        assert report.succeeded
        assert report.coverage_fractions[-1] < 0.5
        # Deleted edges must exist in the graph.
        for u, v in report.edges:
            assert graph.has_edge(u, v)

    def test_hop0_coverage_is_unbreakable(self):
        """Placing on every node leaves nothing for the adversary."""
        graph = ring_graph(10)
        dyn = DynamicWalkIndex.build(graph, 3, 4, seed=34)
        report = min_breaking_edges(
            graph, range(10), 3, index=dyn, threshold=0.5
        )
        assert report.baseline_fraction == 1.0
        assert not report.succeeded
        assert report.edges == ()

    def test_max_edges_cap(self):
        graph = power_law_graph(60, 180, seed=13)
        report = min_breaking_edges(
            graph, [0, 1], 4, num_replicates=6, seed=35,
            threshold=0.0, max_edges=3,
        )
        assert report.num_edges <= 3
        assert not report.succeeded  # threshold 0 is unreachable


# ----------------------------------------------------------------------
class TestChurnReplay:
    def test_trace_parsing(self):
        batches = parse_trace(
            "# comment\nadd 1 2\ndel 3 4\nstep\n\nleave 5\nstep\nstep\nrejoin 5\n"
        )
        assert len(batches) == 4
        assert [op.kind for op in batches[0]] == ["add", "del"]
        assert batches[2] == []
        assert batches[3][0].kind == "rejoin"
        with pytest.raises(ParameterError):
            parse_trace("frobnicate 1 2\n")
        with pytest.raises(ParameterError):
            parse_trace("add 1\n")

    def test_replay_tracks_and_resolves(self):
        graph = power_law_graph(50, 150, seed=14)
        hub = int(np.argmax(graph.degrees))
        trace = f"leave {hub}\nstep\nrejoin {hub}\nstep\n"
        report = churn_replay(
            graph, trace, k=4, length=4, num_replicates=10, seed=36,
            resolve_threshold=1.0,
        )
        assert len(report.steps) == 2
        assert report.steps[0].num_deletes == graph.degree(hub)
        assert report.steps[1].num_inserts == graph.degree(hub)
        # Threshold 1.0: any coverage drop re-solves immediately.
        if report.steps[0].coverage_fraction < report.baseline_coverage_fraction:
            assert report.num_resolves >= 1

    def test_leave_removes_edges_added_during_replay(self):
        """A departing peer loses runtime-added edges, not just original
        overlay links — otherwise it stays reachable after leaving."""
        graph = ring_graph(8)
        assert not graph.has_edge(0, 4)
        report = churn_replay(
            graph, "add 0 4\nstep\nleave 0\nstep\n", k=2, length=3,
            num_replicates=4, seed=1,
        )
        assert len(report.steps) == 2
        # Step 2 must delete all three of node 0's edges: 0-1, 0-7, 0-4.
        assert report.steps[1].num_deletes == 3

    def test_leave_rejoin_same_batch_cancels(self):
        """Delete + re-add of the same edge within one batch cancels out
        instead of tripping the insert/delete overlap guard."""
        graph = ring_graph(8)
        report = churn_replay(
            graph, "leave 5\nrejoin 5\nstep\n", k=2, length=3,
            num_replicates=4, seed=1,
        )
        assert report.steps[0].num_inserts == 0
        assert report.steps[0].num_deletes == 0
        assert report.steps[0].resampled_rows == 0

    def test_membership_errors(self):
        graph = ring_graph(8)
        with pytest.raises(ParameterError):
            churn_replay(
                graph, "rejoin 0\nstep\n", k=2, length=3, num_replicates=4
            )
        with pytest.raises(ParameterError):
            churn_replay(
                graph, "leave 0\nadd 0 4\nstep\n", k=2, length=3,
                num_replicates=4,
            )


class TestTraceIdValidation:
    """Out-of-range/negative trace ids raise ParameterError with line
    context instead of crashing on the membership array (regression:
    ``leave 99`` on a 5-node graph used to escape as a raw IndexError,
    and negative ids silently wrapped through numpy indexing)."""

    def test_out_of_range_leave_is_parameter_error(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError, match="line 1.*out of range"):
            churn_replay(
                graph, "leave 99\nstep\n", k=1, length=2, num_replicates=4
            )

    def test_out_of_range_ids_all_kinds(self):
        graph = ring_graph(5)
        for trace in (
            "rejoin 5\nstep\n", "add 0 7\nstep\n", "del 9 1\nstep\n"
        ):
            with pytest.raises(ParameterError, match="out of range"):
                churn_replay(
                    graph, trace, k=1, length=2, num_replicates=4
                )

    def test_negative_ids_rejected_at_parse_time(self):
        with pytest.raises(ParameterError, match="line 2.*negative"):
            parse_trace("step\nleave -1\n")
        with pytest.raises(ParameterError, match="negative"):
            parse_trace("add 0 -3\n")
        # -1 doubles as TraceOp's "no v" default; a literal -1 in the
        # trace must still be rejected, not mistaken for the sentinel.
        with pytest.raises(ParameterError, match="negative"):
            parse_trace("add 3 -1\n")
        with pytest.raises(ParameterError, match="negative"):
            parse_trace("del -1 3\n")

    def test_programmatic_negative_id_cannot_wrap(self):
        """Ops built without parse_trace are validated too — numpy would
        otherwise silently read present[-1]."""
        graph = ring_graph(5)
        dgraph = DynamicGraph(graph)
        present = np.ones(5, dtype=bool)
        for op in (
            TraceOp(kind="leave", u=-1),
            TraceOp(kind="rejoin", u=-2),
            TraceOp(kind="add", u=0, v=-1),
        ):
            with pytest.raises(ParameterError, match="out of range"):
                expand_membership([op], dgraph, graph, present)
        assert present.all()  # validation fired before any state change

    def test_bad_id_later_in_batch_leaves_membership_untouched(self):
        """Ids are validated for the whole batch up front: a bad op in
        position 2 must not leave position 1's `present` flip behind."""
        graph = ring_graph(5)
        dgraph = DynamicGraph(graph)
        present = np.ones(5, dtype=bool)
        batch = [TraceOp(kind="leave", u=0), TraceOp(kind="leave", u=99)]
        with pytest.raises(ParameterError, match="out of range"):
            expand_membership(batch, dgraph, graph, present)
        assert present.all()

    def test_line_context_reaches_membership_errors(self):
        graph = ring_graph(8)
        with pytest.raises(ParameterError, match="line 3"):
            churn_replay(
                graph, "leave 0\nstep\nleave 0\nstep\n", k=1, length=2,
                num_replicates=4,
            )


class TestP2PChurn:
    def test_departed_hosts_do_not_serve(self):
        graph = power_law_graph(40, 120, seed=15)
        hosts = [3]
        events = f"step\nleave 3\nstep\nrejoin 3\nstep\n"
        report = simulate_p2p_churn(
            graph, hosts, events, num_queries=300, ttl=4, seed=37
        )
        assert len(report.phases) == 3
        assert report.phases[0].num_active_hosts == 1
        assert report.phases[1].num_active_hosts == 0
        assert report.phases[1].success_rate == 0.0
        assert report.phases[2].num_active_hosts == 1
        assert report.phases[2].success_rate > 0.0

    def test_weighted_graph_rejected(self):
        from repro.graphs.weighted import WeightedDiGraph

        weighted = WeightedDiGraph.from_undirected(ring_graph(4))
        with pytest.raises(ParameterError):
            simulate_p2p_churn(weighted, [0], "step\n")


# ----------------------------------------------------------------------
class TestPersistenceMetadata:
    def test_provenance_roundtrip(self, tmp_path):
        graph = power_law_graph(40, 120, seed=16)
        index = FlatWalkIndex.build(graph, 4, 5, seed=40)
        path = tmp_path / "walks.npz"
        save_index(
            index, path, graph=graph, engine="csr", seed=40,
            gain_backend="bitset",
        )
        info = index_provenance(path)
        assert info["engine"] == "csr"
        assert info["seed"] == "40"
        assert info["gain_backend"] == "bitset"
        assert info["graph_num_edges"] == graph.num_edges
        assert info["graph_fingerprint"] == graph_fingerprint(graph)
        assert load_index(path, graph=graph).total_entries == index.total_entries

    def test_stale_index_rejected(self, tmp_path):
        graph = power_law_graph(40, 120, seed=17)
        index = FlatWalkIndex.build(graph, 4, 5, seed=41)
        path = tmp_path / "walks.npz"
        save_index(index, path, graph=graph)
        edge = tuple(map(int, graph.edge_array()[0]))
        edited = edit_graph(graph, deletes=[edge])
        with pytest.raises(ParameterError):
            load_index(path, graph=edited)
        # Same edge count but different adjacency: fingerprint catches it.
        u, v = edge
        other = (u, v + 1) if v + 1 < graph.num_nodes and not graph.has_edge(
            u, (v + 1)
        ) and u != v + 1 else None
        if other is not None:
            rewired = edit_graph(graph, inserts=[other], deletes=[edge])
            with pytest.raises(ParameterError):
                load_index(path, graph=rewired)

    def test_node_count_mismatch_rejected(self, tmp_path):
        graph = ring_graph(8)
        index = FlatWalkIndex.build(graph, 3, 2, seed=42)
        path = tmp_path / "walks.npz"
        save_index(index, path)
        with pytest.raises(ParameterError):
            load_index(path, graph=ring_graph(9))

    def test_v1_archives_still_load(self, tmp_path):
        graph = ring_graph(8)
        index = FlatWalkIndex.build(graph, 3, 2, seed=43)
        path = tmp_path / "v1.npz"
        np.savez(
            path,
            version=np.int64(1),
            header=np.asarray([8, 3, 2], dtype=np.int64),
            indptr=index.indptr,
            state=index.state,
            hop=index.hop,
        )
        back = load_index(path, graph=graph)  # no metadata: shape check only
        np.testing.assert_array_equal(back.state, index.state)
        info = index_provenance(path)
        assert info["engine"] == ""

    def test_dynamic_snapshot_resumes_incrementally(self, tmp_path):
        graph = power_law_graph(50, 150, seed=18)
        dyn = DynamicWalkIndex.build(graph, 4, 6, seed=44, engine="csr")
        dgraph = DynamicGraph(graph)
        rng = np.random.default_rng(45)
        dgraph.apply_batch(*random_edits(graph, rng, 3, 3))
        dyn.sync(dgraph)
        path = tmp_path / "dyn.npz"
        save_dynamic_index(dyn, path)
        # The journal moves on while the snapshot is cold...
        dgraph.apply_batch(*random_edits(dgraph.graph, rng, 3, 3))
        reloaded = load_dynamic_index(path)
        assert reloaded.epoch == 1
        assert reloaded.engine_name == "csr"
        reloaded.sync(dgraph)  # replays only journal[1:]
        rebuilt = DynamicWalkIndex.build(
            dgraph.graph, 4, 6, seed=44, engine="csr"
        )
        assert_index_identical(reloaded, rebuilt)

    def test_dynamic_snapshot_graph_mismatch(self, tmp_path):
        graph = power_law_graph(40, 120, seed=19)
        dyn = DynamicWalkIndex.build(graph, 3, 4, seed=46)
        path = tmp_path / "dyn.npz"
        save_dynamic_index(dyn, path)
        edge = tuple(map(int, graph.edge_array()[0]))
        with pytest.raises(ParameterError):
            load_dynamic_index(path, graph=edit_graph(graph, deletes=[edge]))
        assert load_dynamic_index(path, graph=graph).graph == graph

    def test_dynamic_snapshot_corruption(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(GraphFormatError):
            load_dynamic_index(path)


# ----------------------------------------------------------------------
class TestDynamicCli:
    @pytest.fixture()
    def edge_list(self, tmp_path):
        from repro.graphs.io import write_edge_list

        graph = power_law_graph(40, 120, seed=20)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        return graph, str(path)

    def test_cli_churn_replay(self, edge_list, tmp_path, capsys):
        from repro.cli import main

        graph, path = edge_list
        hub = int(np.argmax(graph.degrees))
        trace = tmp_path / "trace.txt"
        trace.write_text(f"leave {hub}\nstep\nrejoin {hub}\nstep\n")
        code = main([
            "dynamic", "--edge-list", path, "--churn-trace", str(trace),
            "-k", "4", "-L", "4", "-R", "10", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "churn replay: 2 batches" in out
        assert "re-solves:" in out

    def test_cli_robust_and_attack(self, edge_list, capsys):
        from repro.cli import main

        _, path = edge_list
        code = main([
            "dynamic", "--edge-list", path, "--robust", "1",
            "-k", "3", "-L", "4", "-R", "10", "--seed", "1",
        ])
        assert code == 0
        assert "RobustGreedy" in capsys.readouterr().out
        code = main([
            "dynamic", "--edge-list", path, "--attack", "0.4",
            "-k", "3", "-L", "4", "-R", "10", "--seed", "1",
        ])
        assert code == 0
        assert "edge deletions" in capsys.readouterr().out

    def test_cli_simulate_churn_trace(self, edge_list, tmp_path, capsys):
        from repro.cli import main

        _, path = edge_list
        trace = tmp_path / "trace.txt"
        trace.write_text("step\nleave 2\nstep\n")
        code = main([
            "simulate", "--edge-list", path, "--app", "p2p",
            "--targets", "1,2", "--churn-trace", str(trace),
            "--sessions", "50", "--seed", "1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "p2p churn: 2 phases" in out

    def test_cli_simulate_churn_requires_p2p(self, edge_list, tmp_path, capsys):
        from repro.cli import main

        _, path = edge_list
        trace = tmp_path / "trace.txt"
        trace.write_text("step\n")
        code = main([
            "simulate", "--edge-list", path, "--app", "social",
            "--targets", "1", "--churn-trace", str(trace),
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_cli_select_rejects_stale_index(self, edge_list, tmp_path, capsys):
        from repro.cli import main

        graph, path = edge_list
        index_path = tmp_path / "walks.npz"
        code = main([
            "index", "--edge-list", path, "-L", "4", "-R", "10",
            "--seed", "1", "--out", str(index_path),
        ])
        assert code == 0
        # Edit the graph on disk, then try to reuse the stale index.
        from repro.graphs.io import read_edge_list, write_edge_list

        original = read_edge_list(path)
        edge = tuple(map(int, original.edge_array()[0]))
        write_edge_list(edit_graph(original, deletes=[edge]), path)
        code = main([
            "select", "--edge-list", path, "-k", "3",
            "--index", str(index_path),
        ])
        err = capsys.readouterr().err
        assert code == 1
        assert "stale index" in err
