"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graphs.generators import power_law_graph
from repro.graphs.io import write_edge_list


@pytest.fixture
def edge_list(tmp_path):
    path = tmp_path / "g.txt"
    write_edge_list(power_law_graph(80, 240, seed=1), path)
    return str(path)


class TestSelect:
    def test_basic_run(self, edge_list, capsys):
        code = main([
            "select", "--edge-list", edge_list, "-k", "5", "-L", "4",
            "--method", "approx-fast", "-R", "20", "--seed", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "selected:" in out
        assert "ApproxF2" in out  # problem 2 is the default

    def test_problem1_dp(self, edge_list, capsys):
        code = main([
            "select", "--edge-list", edge_list, "-k", "2", "-L", "3",
            "--problem", "1", "--method", "dp",
        ])
        assert code == 0
        assert "DPF1" in capsys.readouterr().out

    def test_evaluate_flag(self, edge_list, capsys):
        main([
            "select", "--edge-list", edge_list, "-k", "3", "-L", "3",
            "--method", "degree", "--evaluate",
        ])
        out = capsys.readouterr().out
        assert "AHT:" in out and "EHN:" in out

    def test_json_output(self, edge_list, tmp_path, capsys):
        out_path = tmp_path / "result.json"
        main([
            "select", "--edge-list", edge_list, "-k", "3", "-L", "3",
            "--method", "degree", "--json", str(out_path),
        ])
        payload = json.loads(out_path.read_text())
        assert payload["algorithm"] == "Degree"
        assert len(payload["selected"]) == 3

    def test_engine_flag_parity(self, edge_list, capsys):
        # The csr backend must reproduce the default backend's selection.
        # Compare only the selection line: the summary line embeds
        # wall-clock timing, which differs between runs.
        def selected_line(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            return next(l for l in out.splitlines() if l.startswith("selected:"))

        argv = [
            "select", "--edge-list", edge_list, "-k", "4", "-L", "4",
            "--method", "approx-fast", "-R", "20", "--seed", "7",
        ]
        assert selected_line(argv) == selected_line(argv + ["--engine", "csr"])

    def test_engine_flag_rejects_unknown(self, edge_list):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "select", "--edge-list", edge_list, "-k", "2",
                "--engine", "gpu",
            ])
        assert excinfo.value.code == 2  # argparse usage error

    def test_gain_backend_flag_parity(self, edge_list, capsys):
        # The bitset kernel must reproduce the entry backend's selection.
        def selected_line(argv):
            assert main(argv) == 0
            out = capsys.readouterr().out
            return next(l for l in out.splitlines() if l.startswith("selected:"))

        argv = [
            "select", "--edge-list", edge_list, "-k", "4", "-L", "4",
            "--method", "approx-fast", "-R", "20", "--seed", "7",
        ]
        assert selected_line(argv) == selected_line(
            argv + ["--gain-backend", "bitset"]
        )

    def test_gain_backend_rejects_unknown(self, edge_list):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "select", "--edge-list", edge_list, "-k", "2",
                "--gain-backend", "gpu",
            ])
        assert excinfo.value.code == 2  # argparse usage error

    def test_json_stdout(self, edge_list, capsys):
        main([
            "select", "--edge-list", edge_list, "-k", "2", "-L", "3",
            "--method", "random", "--seed", "4", "--json", "-",
        ])
        out = capsys.readouterr().out
        assert '"algorithm": "Random"' in out

    def test_synthetic_source(self, capsys):
        code = main([
            "select", "--synthetic", "60,180", "-k", "4", "-L", "3",
            "--method", "dominate",
        ])
        assert code == 0

    def test_library_error_becomes_exit_1(self, edge_list, capsys):
        code = main([
            "select", "--edge-list", edge_list, "-k", "99999", "-L", "3",
            "--method", "degree",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_synthetic_spec(self):
        with pytest.raises(SystemExit):
            main(["select", "--synthetic", "oops", "-k", "2"])


class TestMetrics:
    def test_exact(self, edge_list, capsys):
        code = main([
            "metrics", "--edge-list", edge_list, "--targets", "0,1,2",
            "-L", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "AHT:" in out and "EHN:" in out

    def test_sampled(self, edge_list, capsys):
        code = main([
            "metrics", "--edge-list", edge_list, "--targets", "0",
            "-L", "3", "--sampled", "--seed", "7",
        ])
        assert code == 0

    def test_bad_targets(self, edge_list):
        with pytest.raises(SystemExit):
            main(["metrics", "--edge-list", edge_list, "--targets", "a,b"])


class TestGenerate:
    def test_power_law(self, tmp_path, capsys):
        out = tmp_path / "out.txt"
        code = main([
            "generate", "--model", "power-law", "-n", "50", "-m", "120",
            "--seed", "3", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()
        assert "50 nodes / 120 edges" in capsys.readouterr().out

    def test_erdos_renyi_requires_p(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "generate", "--model", "erdos-renyi", "-n", "20",
                "--out", str(tmp_path / "x.txt"),
            ])

    def test_erdos_renyi(self, tmp_path):
        out = tmp_path / "er.txt"
        code = main([
            "generate", "--model", "erdos-renyi", "-n", "20", "-p", "0.2",
            "--seed", "1", "--out", str(out),
        ])
        assert code == 0
        assert out.exists()


class TestExhibit:
    def test_table2(self, capsys):
        code = main(["exhibit", "table2", "--scale", "0.02"])
        assert code == 0
        assert "Table 2" in capsys.readouterr().out

    def test_csv_output(self, tmp_path):
        out = tmp_path / "t.csv"
        main(["exhibit", "table2", "--scale", "0.02", "--csv", str(out)])
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("name,")
        assert len(lines) == 5

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(SystemExit):
            main(["exhibit", "fig99"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_graph_source_exclusive(self, edge_list):
        with pytest.raises(SystemExit):
            main([
                "select", "--edge-list", edge_list, "--dataset", "CAGrQc",
                "-k", "2",
            ])

    def test_parser_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestSimulate:
    def test_social_with_explicit_targets(self, edge_list, capsys):
        code = main([
            "simulate", "--edge-list", edge_list, "--app", "social",
            "--targets", "0,1,2", "-L", "4", "--sessions", "500",
            "--seed", "7",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "discovery_rate:" in out
        assert "num_hosts: 3" in out

    def test_p2p_with_computed_placement(self, edge_list, capsys):
        code = main([
            "simulate", "--edge-list", edge_list, "--app", "p2p",
            "-k", "4", "-L", "4", "--sessions", "300", "--walkers", "2",
            "--seed", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "placement (ApproxF2):" in out
        assert "success_rate:" in out
        assert "walkers_per_query: 2" in out

    def test_ads(self, edge_list, capsys):
        code = main([
            "simulate", "--edge-list", edge_list, "--app", "ads",
            "--targets", "0", "-L", "3", "--sessions-per-user", "2",
            "--seed", "9",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reach:" in out
        assert "impressions:" in out

    def test_bad_targets_rejected(self, edge_list):
        with pytest.raises(SystemExit):
            main([
                "simulate", "--edge-list", edge_list, "--app", "social",
                "--targets", "a,b",
            ])

    def test_out_of_range_target_is_library_error(self, edge_list, capsys):
        code = main([
            "simulate", "--edge-list", edge_list, "--app", "social",
            "--targets", "99999",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestExhibitPlot:
    def test_plot_flag(self, capsys):
        code = main(["exhibit", "table2", "--plot", "spec nodes:spec edges:name"])
        assert code == 0
        out = capsys.readouterr().out
        assert "legend:" in out

    def test_plot_flag_bad_spec(self):
        with pytest.raises(SystemExit):
            main(["exhibit", "table2", "--plot", "nodes"])


class TestIndexWorkflow:
    def test_index_then_select(self, edge_list, tmp_path, capsys):
        index_path = str(tmp_path / "walks.idx.npz")
        code = main([
            "index", "--edge-list", edge_list, "-L", "4", "-R", "10",
            "--seed", "3", "--out", index_path,
        ])
        assert code == 0
        assert "entries" in capsys.readouterr().out
        code = main([
            "select", "--edge-list", edge_list, "-k", "5",
            "--index", index_path,
        ])
        assert code == 0
        assert "selected:" in capsys.readouterr().out

    def test_index_reuse_is_deterministic(self, edge_list, tmp_path, capsys):
        index_path = str(tmp_path / "walks.idx.npz")
        main([
            "index", "--edge-list", edge_list, "-L", "3", "-R", "8",
            "--seed", "5", "--out", index_path,
        ])
        capsys.readouterr()
        main(["select", "--edge-list", edge_list, "-k", "4",
              "--index", index_path])
        first = capsys.readouterr().out
        main(["select", "--edge-list", edge_list, "-k", "4",
              "--index", index_path])
        second = capsys.readouterr().out
        sel = [line for line in first.splitlines() if "selected:" in line]
        assert sel == [
            line for line in second.splitlines() if "selected:" in line
        ]

    def test_index_requires_approx_fast(self, edge_list, tmp_path):
        index_path = str(tmp_path / "walks.idx.npz")
        main(["index", "--edge-list", edge_list, "-L", "3", "-R", "4",
              "--out", index_path])
        with pytest.raises(SystemExit):
            main([
                "select", "--edge-list", edge_list, "-k", "2",
                "--method", "dp", "--index", index_path,
            ])

    def test_corrupt_index_is_library_error(self, edge_list, tmp_path,
                                            capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"garbage")
        code = main([
            "select", "--edge-list", edge_list, "-k", "2",
            "--index", str(bad),
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestIndexFormats:
    """--index-format: archive variants are interchangeable at the CLI."""

    def _selected(self, capsys):
        out = capsys.readouterr().out
        return [line for line in out.splitlines() if "selected:" in line]

    def test_all_formats_select_identically(self, edge_list, tmp_path,
                                            capsys):
        reference = None
        for fmt in ("dense", "compressed", "mmap"):
            index_path = str(tmp_path / f"walks-{fmt}")
            code = main([
                "index", "--edge-list", edge_list, "-L", "3", "-R", "8",
                "--seed", "5", "--out", index_path, "--index-format", fmt,
            ])
            assert code == 0
            assert fmt in capsys.readouterr().out
            code = main([
                "select", "--edge-list", edge_list, "-k", "4",
                "--index", index_path,
            ])
            assert code == 0
            selected = self._selected(capsys)
            if reference is None:
                reference = selected
            assert selected == reference, fmt

    def test_serve_converts_in_memory(self, edge_list, tmp_path, capsys):
        workload = tmp_path / "workload.txt"
        workload.write_text("select 3\nmetrics 1,2\n")
        code = main([
            "serve", "--edge-list", edge_list, "--workload", str(workload),
            "-L", "3", "-R", "8", "--seed", "1", "--clients", "2",
            "--index-format", "compressed",
        ])
        assert code == 0
        assert "errors: 0" in capsys.readouterr().out

    def test_dynamic_solves_on_compressed(self, edge_list, tmp_path,
                                          capsys):
        trace = tmp_path / "trace.txt"
        trace.write_text("del 0 1\nstep\nadd 0 1\nstep\n")
        argv = [
            "dynamic", "--edge-list", edge_list, "--churn-trace",
            str(trace), "-k", "3", "-L", "3", "-R", "5", "--seed", "2",
        ]
        assert main(argv) == 0
        dense = capsys.readouterr().out
        assert main(argv + ["--index-format", "compressed"]) == 0
        assert capsys.readouterr().out == dense

    def test_unknown_format_rejected(self, edge_list, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "index", "--edge-list", edge_list, "-L", "3", "-R", "4",
                "--out", str(tmp_path / "x"), "--index-format", "sparse",
            ])


class TestAnalyze:
    def test_recommendation(self, edge_list, capsys):
        code = main([
            "analyze", "--edge-list", edge_list, "--targets", "0,1",
            "--tolerance", "0.2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "recommended L:" in out
        assert "truncation gap" in out

    def test_bad_targets(self, edge_list):
        with pytest.raises(SystemExit):
            main(["analyze", "--edge-list", edge_list, "--targets", "x"])


class TestDynamicBadTrace:
    def test_out_of_range_trace_id_exits_1(self, edge_list, tmp_path, capsys):
        """Regression: an out-of-range trace id used to escape as a raw
        IndexError traceback; it must exit 1 with a ParameterError
        message through the CLI's RwdomError handler."""
        trace = tmp_path / "bad.txt"
        trace.write_text("leave 99999\nstep\n")
        code = main([
            "dynamic", "--edge-list", edge_list, "--churn-trace",
            str(trace), "-k", "2", "-L", "3", "-R", "5", "--seed", "1",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "out of range" in err
        assert "line 1" in err

    def test_negative_trace_id_exits_1(self, edge_list, tmp_path, capsys):
        trace = tmp_path / "neg.txt"
        trace.write_text("add 0 -2\nstep\n")
        code = main([
            "dynamic", "--edge-list", edge_list, "--churn-trace",
            str(trace), "-k", "2", "-L", "3", "-R", "5", "--seed", "1",
        ])
        assert code == 1
        assert "negative" in capsys.readouterr().err


class TestServe:
    @pytest.fixture
    def workload(self, tmp_path):
        path = tmp_path / "workload.txt"
        path.write_text(
            "select 3\nselect 6\nmetrics 1,2,3\ncoverage 4,5\n"
            "min-targets 0.3\n"
        )
        return str(path)

    def test_serve_in_process_index(self, edge_list, workload, capsys):
        code = main([
            "serve", "--edge-list", edge_list, "--workload", workload,
            "-L", "3", "-R", "10", "--seed", "1", "--clients", "2",
            "--repeat", "2", "--batch-window", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput:" in out
        assert "p99" in out
        assert "kernel passes:" in out
        assert "errors: 0" in out

    def test_serve_prebuilt_index(self, edge_list, workload, tmp_path,
                                  capsys):
        index_path = tmp_path / "served.idx"  # suffixless on purpose
        code = main([
            "index", "--edge-list", edge_list, "-L", "3", "-R", "10",
            "--seed", "1", "--out", str(index_path),
        ])
        assert code == 0
        code = main([
            "serve", "--edge-list", edge_list, "--workload", workload,
            "--index", str(index_path), "--clients", "2",
        ])
        assert code == 0
        assert "throughput:" in capsys.readouterr().out

    def test_serve_json_report(self, edge_list, workload, tmp_path):
        report_path = tmp_path / "report.json"
        code = main([
            "serve", "--edge-list", edge_list, "--workload", workload,
            "-L", "3", "-R", "10", "--seed", "1", "--clients", "2",
            "--json", str(report_path),
        ])
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["num_queries"] == 5
        assert payload["errors"] == 0
        assert payload["stats"]["queries"] == 5

    def test_serve_stale_index_exits_1(self, edge_list, workload,
                                       tmp_path, capsys):
        other = tmp_path / "other.txt"
        write_edge_list(power_law_graph(80, 241, seed=5), other)
        index_path = tmp_path / "stale.npz"
        code = main([
            "index", "--edge-list", str(other), "-L", "3", "-R", "10",
            "--seed", "1", "--out", str(index_path),
        ])
        assert code == 0
        capsys.readouterr()
        code = main([
            "serve", "--edge-list", edge_list, "--workload", workload,
            "--index", str(index_path), "--clients", "2",
        ])
        assert code == 1
        assert "stale index" in capsys.readouterr().err

    def test_serve_rejected_queries_exit_1(self, edge_list, tmp_path,
                                           capsys):
        """Library rejections inside the run surface as exit 1, not a
        plausible-looking success report."""
        path = tmp_path / "oob.txt"
        path.write_text("select 3\nmetrics 99999\n")
        code = main([
            "serve", "--edge-list", edge_list, "--workload", str(path),
            "-L", "3", "-R", "10", "--seed", "1", "--clients", "2",
        ])
        assert code == 1
        captured = capsys.readouterr()
        assert "errors: 1" in captured.out
        assert "rejected" in captured.err

    def test_serve_all_rejected_run_fails_loudly(self, edge_list, tmp_path,
                                                 capsys):
        """An all-rejected run has no latency distribution; since ISSUE 6
        it exits 1 with a typed error instead of emitting a report whose
        percentiles describe nothing."""
        path = tmp_path / "allbad.txt"
        path.write_text("metrics 99999\n")
        report_path = tmp_path / "report.json"
        code = main([
            "serve", "--edge-list", edge_list, "--workload", str(path),
            "-L", "3", "-R", "10", "--seed", "1",
            "--json", str(report_path),
        ])
        assert code == 1
        assert "no queries were answered" in capsys.readouterr().err
        assert not report_path.exists()

    def test_serve_bad_workload_exits_1(self, edge_list, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("select nope\n")
        code = main([
            "serve", "--edge-list", edge_list, "--workload", str(path),
            "-L", "3", "-R", "10",
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert "workload line 1" in err
