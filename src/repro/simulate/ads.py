"""Advertisement-campaign simulation — the paper's second scenario.

An advertiser pays a set of users to carry an ad; everyone else encounters
it while social-browsing.  Unlike the one-shot item-discovery setting,
campaigns run over repeat sessions, so the interesting measures are the
standard advertising KPIs:

* **reach** — fraction of users who saw the ad at least once across the
  campaign;
* **impressions** — total number of ad views (one per session that reaches
  a host);
* **frequency** — impressions per reached user (``impressions / reached``).

Hosts see their own ad every session by definition (hop 0), which mirrors
how the paper counts ``u in S`` as dominated; pass ``count_hosts=False``
to report organic reach only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Collection

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.weighted import WeightedDiGraph
from repro.hitting.transition import target_mask
from repro.simulate._walks import run_first_hits
from repro.walks.backends import WalkEngine
from repro.walks.rng import resolve_rng

__all__ = ["AdCampaignReport", "simulate_ad_campaign"]


@dataclass(frozen=True)
class AdCampaignReport:
    """Outcome of an ad-campaign simulation.

    Attributes
    ----------
    num_users:
        Users in the network.
    sessions_per_user:
        Browsing sessions each user ran during the campaign.
    reached_users:
        Users with at least one impression.
    reach:
        ``reached_users / num_users``.
    impressions:
        Total sessions that reached a host.
    frequency:
        ``impressions / reached_users`` (``nan`` if nobody was reached).
    length:
        Hop budget per session.
    num_hosts:
        Users paid to carry the ad.
    count_hosts:
        Whether hosts' own sessions counted as impressions.
    """

    num_users: int
    sessions_per_user: int
    reached_users: int
    reach: float
    impressions: int
    frequency: float
    length: int
    num_hosts: int
    count_hosts: bool


def simulate_ad_campaign(
    graph: "Graph | WeightedDiGraph",
    hosts: Collection[int],
    sessions_per_user: int = 5,
    length: int = 6,
    count_hosts: bool = True,
    seed: "int | np.random.Generator | None" = None,
    engine: "str | WalkEngine | None" = None,
) -> AdCampaignReport:
    """Simulate a campaign where every user browses repeatedly.

    Every user runs ``sessions_per_user`` independent L-length browsing
    sessions; a session that reaches a hosting user is one impression for
    the browsing user.
    """
    if sessions_per_user < 1:
        raise ParameterError("sessions_per_user must be >= 1")
    if length < 0:
        raise ParameterError("length must be >= 0")
    mask = target_mask(graph.num_nodes, hosts)
    rng = resolve_rng(seed)
    n = graph.num_nodes
    starts = np.repeat(np.arange(n, dtype=np.int64), sessions_per_user)
    first = run_first_hits(graph, starts, length, mask, rng, engine=engine)
    saw = (first >= 0).reshape(n, sessions_per_user)
    if not count_hosts:
        saw[mask, :] = False
    impressions = int(saw.sum())
    reached = int(saw.any(axis=1).sum())
    frequency = impressions / reached if reached else float("nan")
    return AdCampaignReport(
        num_users=n,
        sessions_per_user=sessions_per_user,
        reached_users=reached,
        reach=reached / n if n else 0.0,
        impressions=impressions,
        frequency=frequency,
        length=length,
        num_hosts=int(mask.sum()),
        count_hosts=count_hosts,
    )
