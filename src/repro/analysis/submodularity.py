"""Empirical audits of submodular structure.

Theorems 3.1 and 3.2 prove that ``F1`` and ``F2`` are nondecreasing
submodular set functions with ``F(empty) = 0`` — the properties that
entitle greedy to its ``1 - 1/e`` guarantee.  :func:`audit_set_function`
checks those properties on randomly sampled chains ``S ⊂ T`` and candidates
``j ∉ T``:

* nondecreasing: ``F(S) <= F(T)``;
* submodular: ``F(S + j) - F(S) >= F(T + j) - F(T)``;
* normalized: ``F(empty) = 0``.

A clean audit is not a proof, but a violation *is* a counterexample — the
test suite runs the audit against every objective in the package (including
the sampled ones evaluated on frozen walks, where the properties must hold
exactly per realization), and the audit doubles as a debugging tool when
implementing new objectives such as the edge-domination ``F3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.core.objectives import SetObjective
from repro.walks.rng import resolve_rng

__all__ = ["SetFunctionAudit", "audit_set_function", "approximation_ratio"]


@dataclass(frozen=True)
class SetFunctionAudit:
    """Result of an empirical set-function audit.

    Attributes
    ----------
    trials:
        Number of random ``(S, T, j)`` configurations tested.
    monotonicity_violations:
        ``(S, T, F(S), F(T))`` tuples where ``F(S) > F(T) + tolerance``.
    submodularity_violations:
        ``(S, T, j, gain_S, gain_T)`` tuples with ``gain_S < gain_T - tol``.
    empty_value:
        Measured ``F(empty)``.
    tolerance:
        Numeric slack used in comparisons.
    """

    trials: int
    monotonicity_violations: list = field(default_factory=list)
    submodularity_violations: list = field(default_factory=list)
    empty_value: float = 0.0
    tolerance: float = 1e-9

    @property
    def ok(self) -> bool:
        """No violations and ``F(empty)`` within tolerance of zero."""
        return (
            not self.monotonicity_violations
            and not self.submodularity_violations
            and abs(self.empty_value) <= self.tolerance
        )


def audit_set_function(
    objective: SetObjective,
    trials: int = 50,
    max_set_size: int = 4,
    tolerance: float = 1e-9,
    seed: "int | np.random.Generator | None" = None,
) -> SetFunctionAudit:
    """Sample random chains and check monotonicity + submodularity.

    Each trial draws ``S`` of random size ``<= max_set_size``, extends it by
    random extra nodes into ``T``, draws ``j ∉ T``, and evaluates the four
    values the two properties compare.  Deterministic objectives must audit
    clean; sampled objectives should be frozen (fixed walks) first —
    auditing a re-sampling objective mixes realizations and can flag
    spurious violations.
    """
    if trials < 1:
        raise ParameterError("trials must be >= 1")
    if max_set_size < 1:
        raise ParameterError("max_set_size must be >= 1")
    n = objective.num_nodes
    if n < 3:
        raise ParameterError("audit needs at least 3 nodes")
    rng = resolve_rng(seed)
    monotone_bad: list = []
    submodular_bad: list = []
    for _ in range(trials):
        small_size = int(rng.integers(0, max_set_size + 1))
        grow_by = int(rng.integers(1, max_set_size + 1))
        perm = rng.permutation(n)
        small = frozenset(int(v) for v in perm[:small_size])
        large = small | frozenset(
            int(v) for v in perm[small_size : small_size + grow_by]
        )
        outside = [int(v) for v in perm[small_size + grow_by :]]
        if not outside:
            continue
        j = outside[0]
        f_small = objective.value(small)
        f_large = objective.value(large)
        if f_small > f_large + tolerance:
            monotone_bad.append((small, large, f_small, f_large))
        gain_small = objective.value(small | {j}) - f_small
        gain_large = objective.value(large | {j}) - f_large
        if gain_small < gain_large - tolerance:
            submodular_bad.append((small, large, j, gain_small, gain_large))
    return SetFunctionAudit(
        trials=trials,
        monotonicity_violations=monotone_bad,
        submodularity_violations=submodular_bad,
        empty_value=float(objective.value(frozenset())),
        tolerance=tolerance,
    )


def approximation_ratio(
    objective: SetObjective,
    selected,
    optimal_value: float,
) -> float:
    """``F(selected) / OPT`` — how close a solver landed to the optimum.

    ``optimal_value`` usually comes from
    :func:`repro.core.exact_optimal.optimal_value` on a small instance.
    Returns ``inf`` when ``OPT`` is zero but the solver scored positive
    (cannot happen for nondecreasing normalized objectives) and ``1.0``
    when both are zero.
    """
    achieved = float(objective.value(selected))
    if optimal_value == 0.0:
        return 1.0 if achieved == 0.0 else float("inf")
    return achieved / float(optimal_value)
