"""Tests for the Algorithm 2 Monte-Carlo estimators."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.generators import complete_graph, path_graph
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.core.objectives import F1Objective, F2Objective
from repro.walks.estimators import (
    estimate_f1,
    estimate_f2,
    estimate_hit_probability,
    estimate_hitting_time,
    estimate_objectives,
    estimate_pairwise_hitting_time,
)


class TestHittingTimeEstimator:
    def test_source_in_targets_is_zero(self, small_power_law):
        assert estimate_hitting_time(small_power_law, 3, {3}, 5, 50, seed=1) == 0.0

    def test_deterministic_graph_exact(self):
        # On a path's endpoint with target = its only neighbor the walk hits
        # at hop 1 with certainty.
        g = path_graph(4)
        assert estimate_hitting_time(g, 0, {1}, 3, 25, seed=2) == 1.0

    def test_converges_to_dp(self, small_power_law):
        targets = {0, 7}
        length = 6
        exact = hitting_time_vector(small_power_law, targets, length)
        est = estimate_hitting_time(
            small_power_law, 12, targets, length, 20_000, seed=3
        )
        assert est == pytest.approx(exact[12], abs=0.1)

    def test_miss_counts_as_length(self):
        # Disconnected source can never hit: estimator must return L.
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert estimate_hitting_time(g, 2, {0}, 7, 40, seed=4) == 7.0

    def test_pairwise_special_case(self, small_power_law):
        a = estimate_pairwise_hitting_time(small_power_law, 2, 5, 4, 500, seed=9)
        b = estimate_hitting_time(small_power_law, 2, {5}, 4, 500, seed=9)
        assert a == b


class TestHitProbabilityEstimator:
    def test_in_targets(self, small_power_law):
        assert estimate_hit_probability(small_power_law, 1, {1}, 4, 30, seed=1) == 1.0

    def test_unreachable(self):
        g = Graph.from_edges([(0, 1), (2, 3)])
        assert estimate_hit_probability(g, 2, {0}, 9, 30, seed=1) == 0.0

    def test_converges_to_dp(self, small_power_law):
        targets = {4}
        exact = hit_probability_vector(small_power_law, targets, 5)
        est = estimate_hit_probability(
            small_power_law, 20, targets, 5, 20_000, seed=5
        )
        assert est == pytest.approx(exact[20], abs=0.02)

    def test_range(self, small_power_law):
        est = estimate_hit_probability(small_power_law, 0, {9}, 5, 100, seed=6)
        assert 0.0 <= est <= 1.0


class TestObjectiveEstimators:
    def test_f1_converges(self, small_power_law):
        S = {0, 9, 21}
        exact = F1Objective(small_power_law, 5).value(S)
        est = estimate_f1(small_power_law, S, 5, 3_000, seed=7)
        assert est == pytest.approx(exact, rel=0.05)

    def test_f2_converges(self, small_power_law):
        S = {0, 9, 21}
        exact = F2Objective(small_power_law, 5).value(S)
        est = estimate_f2(small_power_law, S, 5, 3_000, seed=8)
        assert est == pytest.approx(exact, rel=0.05)

    def test_empty_set(self, small_power_law):
        est = estimate_objectives(small_power_law, set(), 5, 20, seed=1)
        assert est.f1 == 0.0
        assert est.f2 == 0.0

    def test_full_set(self, small_power_law):
        n = small_power_law.num_nodes
        est = estimate_objectives(small_power_law, set(range(n)), 5, 20, seed=1)
        assert est.f1 == n * 5
        assert est.f2 == n

    def test_f2_includes_members(self, small_power_law):
        # F2 >= |S| always: members hit at hop 0.
        est = estimate_f2(small_power_law, {1, 2, 3}, 4, 50, seed=2)
        assert est >= 3.0

    def test_complete_graph_closed_form(self):
        n, length = 8, 5
        g = complete_graph(n)
        q = 1 / (n - 1)
        h = sum((1 - q) ** (i - 1) for i in range(1, length + 1))
        est = estimate_objectives(g, {0}, length, 30_000, seed=3)
        assert est.f1 == pytest.approx(n * length - (n - 1) * h, rel=0.02)

    def test_unbiasedness_across_seeds(self, small_power_law):
        # Mean of many independent small-R estimates approaches the exact
        # value (Lemma 3.1/3.2 say each is unbiased).
        S = {3, 14}
        exact = F1Objective(small_power_law, 4).value(S)
        estimates = [
            estimate_f1(small_power_law, S, 4, 10, seed=seed)
            for seed in range(60)
        ]
        assert np.mean(estimates) == pytest.approx(exact, rel=0.05)


class TestValidation:
    def test_bad_length(self, small_power_law):
        with pytest.raises(ParameterError):
            estimate_f1(small_power_law, {0}, -1, 10)

    def test_bad_samples(self, small_power_law):
        with pytest.raises(ParameterError):
            estimate_f1(small_power_law, {0}, 3, 0)

    def test_bad_targets(self, small_power_law):
        with pytest.raises(ParameterError):
            estimate_f1(small_power_law, {10**6}, 3, 10)
