"""Simulation study: from abstract objectives to application KPIs.

The paper's evaluation scores placements by AHT and EHN; the applications
in its introduction care about different numbers — discovery rates, search
success, ad reach.  This example uses the simulators in
:mod:`repro.simulate` to translate: one greedy placement, replayed through
all three Section 1.1 scenarios, against Degree and random placements,
with an ASCII chart of the k-sweep.

Run:  python examples/simulation_study.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.experiments.plotting import ascii_plot
from repro.simulate import (
    simulate_ad_campaign,
    simulate_p2p_search,
    simulate_social_browsing,
)

NODES, EDGES = 3_000, 12_000
LENGTH = 6
BUDGETS = (5, 10, 20, 40)


def main() -> None:
    graph = repro.power_law_graph(NODES, EDGES, seed=7)
    print(f"network: {graph}\n")

    # One greedy run covers every budget: selections are prefixes.
    greedy = repro.approx_greedy_fast(
        graph, max(BUDGETS), LENGTH, num_replicates=100, objective="f2",
        seed=1,
    )
    degree = repro.degree_baseline(graph, max(BUDGETS))
    rng = np.random.default_rng(9)
    random_order = tuple(rng.permutation(NODES)[: max(BUDGETS)])

    print(f"{'k':>4} {'placement':<10} {'discovery':>10} {'p2p hit':>9} "
          f"{'msgs/query':>11} {'ad reach':>9}")
    curves: dict[str, list[tuple[float, float]]] = {
        "ApproxF2": [], "Degree": [], "Random": [],
    }
    for k in BUDGETS:
        for name, order in (
            ("ApproxF2", greedy.selected),
            ("Degree", degree.selected),
            ("Random", random_order),
        ):
            hosts = order[:k]
            social = simulate_social_browsing(
                graph, hosts, num_sessions=15_000, length=LENGTH, seed=3
            )
            p2p = simulate_p2p_search(
                graph, hosts, num_queries=15_000, ttl=LENGTH, seed=4
            )
            ads = simulate_ad_campaign(
                graph, hosts, sessions_per_user=3, length=LENGTH, seed=5
            )
            curves[name].append((k, social.discovery_rate))
            print(f"{k:>4} {name:<10} {social.discovery_rate:>10.3f} "
                  f"{p2p.success_rate:>9.3f} "
                  f"{p2p.mean_messages_per_query:>11.2f} {ads.reach:>9.3f}")
        print()

    print(ascii_plot(
        curves, title="item discovery rate vs budget k",
        x_label="k", y_label="discovery", width=56, height=14,
    ))


if __name__ == "__main__":
    main()
