"""Table 2: dataset summary (spec values + built replicas)."""

from repro.experiments.figures import table2


def test_table2(benchmark, config, report):
    table = benchmark.pedantic(lambda: table2(config), rounds=1, iterations=1)
    report(table, "table2.txt")
    # The spec columns must echo the paper exactly.
    assert table.column("spec nodes") == [5_242, 12_008, 58_228, 75_872]
    assert table.column("spec edges") == [28_968, 236_978, 428_156, 396_026]
    # Replicas honor the configured scale.
    for spec_n, built_n in zip(table.column("spec nodes"), table.column("built nodes")):
        assert built_n == max(16, round(spec_n * config.scale))
