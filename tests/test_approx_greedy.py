"""Tests for the paper-faithful approximate greedy (Algorithms 3-6).

Besides the verbatim Example 3.1 run, the key correctness property is that
``Approx_Gain`` really is the marginal gain of the *estimated* objective
defined by the materialized walks: for Problem 1,

    ``sigma_u(S) = F1hat(S + u) - F1hat(S)``

where ``F1hat(S) = n L - sum_u mean_i min(first-hit_i(u, S), L)`` is computed
directly from the raw walks.  (With the Eq. 6 normalization the paper's
"- L" constant cancels exactly.)  The same holds for Problem 2 with the hit
indicator.  These tests enforce that identity on random graphs.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import paper_example_graph, power_law_graph
from repro.walks.engine import batch_walks, first_hit_time
from repro.walks.index import InvertedIndex, walker_major_starts
from repro.core.approx_greedy import (
    approx_gain,
    approx_greedy,
    initial_distances,
    update_distances,
)
from tests.conftest import EXAMPLE31_ROUND1_GAINS


def estimated_f1(walks, num_nodes, num_replicates, length, targets):
    """F1hat straight from the walks (the estimator Algorithm 6 maintains)."""
    targets = set(targets)
    total = 0.0
    for b, walk in enumerate(walks):
        hit = first_hit_time(walk, targets)
        total += hit if hit is not None else length
    return num_nodes * length - total / num_replicates


def estimated_f2(walks, num_nodes, num_replicates, targets):
    """F2hat straight from the walks."""
    targets = set(targets)
    hits = sum(
        1 for walk in walks if first_hit_time(walk, targets) is not None
    )
    return hits / num_replicates


class TestExample31:
    def test_round1_gains(self, example_walks):
        index = InvertedIndex.from_walks(example_walks, 8, 1)
        distances = initial_distances(index, "f1")
        gains = [approx_gain(index, distances, u, "f1") for u in range(8)]
        assert gains == EXAMPLE31_ROUND1_GAINS

    def test_update_after_v2(self, example_walks):
        index = InvertedIndex.from_walks(example_walks, 8, 1)
        distances = initial_distances(index, "f1")
        update_distances(index, distances, 1, "f1")
        # Paper: D[v2]=0 and D[v1], D[v3], D[v5] re-set to 1; rest stay 2.
        assert distances[0] == [1, 0, 1, 2, 1, 2, 2, 2]

    def test_full_run_selects_v2_v7(self, example_walks):
        graph = paper_example_graph()
        index = InvertedIndex.from_walks(example_walks, 8, 1)
        result = approx_greedy(graph, 2, 2, index=index, objective="f1")
        assert result.selected == (1, 6)

    def test_second_round_gain_of_v7(self, example_walks):
        index = InvertedIndex.from_walks(example_walks, 8, 1)
        distances = initial_distances(index, "f1")
        update_distances(index, distances, 1, "f1")
        assert approx_gain(index, distances, 6, "f1") == 5.0


class TestGainIsEstimatedMarginal:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_f1_identity(self, seed):
        graph = power_law_graph(30, 90, seed=seed)
        replicates, length = 3, 4
        starts = walker_major_starts(graph.num_nodes, replicates)
        walks = batch_walks(graph, starts, length, seed=seed).tolist()
        index = InvertedIndex.from_walks(walks, graph.num_nodes, replicates)
        distances = initial_distances(index, "f1")
        selected = []
        for _ in range(3):
            best, best_gain = -1, -np.inf
            for u in range(graph.num_nodes):
                if u in selected:
                    continue
                gain = approx_gain(index, distances, u, "f1")
                expected = estimated_f1(
                    walks, graph.num_nodes, replicates, length, selected + [u]
                ) - estimated_f1(
                    walks, graph.num_nodes, replicates, length, selected
                )
                assert gain == pytest.approx(expected, abs=1e-9)
                if gain > best_gain:
                    best, best_gain = u, gain
            selected.append(best)
            update_distances(index, distances, best, "f1")

    @pytest.mark.parametrize("seed", [0, 1])
    def test_f2_identity(self, seed):
        graph = power_law_graph(30, 90, seed=seed + 10)
        replicates, length = 3, 4
        starts = walker_major_starts(graph.num_nodes, replicates)
        walks = batch_walks(graph, starts, length, seed=seed).tolist()
        index = InvertedIndex.from_walks(walks, graph.num_nodes, replicates)
        distances = initial_distances(index, "f2")
        selected = []
        for _ in range(3):
            best, best_gain = -1, -np.inf
            for u in range(graph.num_nodes):
                if u in selected:
                    continue
                gain = approx_gain(index, distances, u, "f2")
                # F2hat counts members as certain hits: walks from members
                # hit at hop 0, so compute over all walkers.
                expected = estimated_f2(
                    walks, graph.num_nodes, replicates, selected + [u]
                ) - estimated_f2(walks, graph.num_nodes, replicates, selected)
                assert gain == pytest.approx(expected, abs=1e-9)
                if gain > best_gain:
                    best, best_gain = u, gain
            selected.append(best)
            update_distances(index, distances, best, "f2")


class TestRunBehaviour:
    def test_distinct_selection(self, small_power_law):
        result = approx_greedy(
            small_power_law, 6, 4, num_replicates=5, seed=1, objective="f2"
        )
        assert len(set(result.selected)) == 6

    def test_deterministic_by_seed(self, small_power_law):
        a = approx_greedy(small_power_law, 4, 4, num_replicates=5, seed=9)
        b = approx_greedy(small_power_law, 4, 4, num_replicates=5, seed=9)
        assert a.selected == b.selected

    def test_gains_non_increasing(self, small_power_law):
        result = approx_greedy(small_power_law, 6, 4, num_replicates=10, seed=2)
        gains = list(result.gains)
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))

    def test_bad_objective(self, small_power_law):
        with pytest.raises(ParameterError):
            approx_greedy(small_power_law, 2, 3, objective="f3")

    def test_index_size_mismatch(self, small_power_law, example_walks):
        index = InvertedIndex.from_walks(example_walks, 8, 1)
        with pytest.raises(ParameterError):
            approx_greedy(small_power_law, 2, 2, index=index)

    def test_k_validation(self, small_power_law):
        with pytest.raises(ParameterError):
            approx_greedy(small_power_law, -1, 3)

    def test_algorithm_names(self, small_power_law):
        f1 = approx_greedy(small_power_law, 1, 3, num_replicates=3, seed=1)
        f2 = approx_greedy(
            small_power_law, 1, 3, num_replicates=3, seed=1, objective="f2"
        )
        assert f1.algorithm == "ApproxF1"
        assert f2.algorithm == "ApproxF2"
