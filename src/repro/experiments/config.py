"""Experiment harness configuration.

Every figure/table entry point takes a :class:`HarnessConfig`; the default
is read from the environment so CI and local runs can trade fidelity for
wall-clock without touching code:

``REPRO_SCALE``
    Fraction in ``(0, 1]`` applied to dataset sizes (node *and* edge counts)
    for the four Table 2 replicas and the Fig. 9 scalability family.
    Default 0.25 — big enough that every paper trend is visible, small
    enough that the whole benchmark suite finishes on one core.  Set to 1
    for paper-scale graphs.
``REPRO_R``
    Walk replicate count used by the approximate algorithms in the
    dataset-quality experiments (paper: 100).
``REPRO_SEED``
    Master seed for every stochastic component.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

from repro.errors import ParameterError

__all__ = ["HarnessConfig", "default_config"]


@dataclass(frozen=True)
class HarnessConfig:
    """Knobs shared by all experiments."""

    scale: float = 0.25
    num_replicates: int = 100
    seed: int = 1302
    #: budgets probed by the quality-vs-k experiments (paper Figs. 6-7).
    budgets: tuple[int, ...] = (20, 40, 60, 80, 100)
    #: walk length for the dataset experiments (paper Figs. 6-8).
    length: int = 6

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ParameterError("scale must lie in (0, 1]")
        if self.num_replicates < 1:
            raise ParameterError("num_replicates must be >= 1")
        if self.length < 0:
            raise ParameterError("length must be >= 0")
        if any(k < 0 for k in self.budgets):
            raise ParameterError("budgets must be non-negative")

    def with_overrides(self, **changes: object) -> "HarnessConfig":
        """Functional update (frozen dataclass)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def default_config() -> HarnessConfig:
    """Config from environment variables (see module docstring)."""
    base = HarnessConfig()
    scale = float(os.environ.get("REPRO_SCALE", base.scale))
    num_replicates = int(os.environ.get("REPRO_R", base.num_replicates))
    seed = int(os.environ.get("REPRO_SEED", base.seed))
    return HarnessConfig(scale=scale, num_replicates=num_replicates, seed=seed)
