"""Directed, weighted graphs — the paper's Section 2 extension.

The paper develops everything on undirected, unweighted graphs but notes
that "the proposed techniques can also be easily extended to directed and
weighted graphs".  This module provides that extension's substrate: a CSR
container for a directed graph with positive edge weights, where a random
walk at ``u`` follows out-edge ``(u, v)`` with probability
``w(u, v) / sum_x w(u, x)``.

Dangling nodes (no out-edges) keep the package-wide stay-in-place policy.
The weighted solvers live in :mod:`repro.core.weighted` and the weighted
walk machinery in :mod:`repro.walks.alias`.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.errors import GraphFormatError, ParameterError

__all__ = ["WeightedDiGraph"]


class WeightedDiGraph:
    """Directed graph with positive edge weights in CSR form.

    ``indptr`` / ``indices`` describe out-adjacency; ``weights`` aligns with
    ``indices``.  Parallel edges are merged by summing their weights.
    """

    __slots__ = ("_indptr", "_indices", "_weights")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        if indptr.size == 0 or indptr[0] != 0:
            raise ParameterError("indptr must start with 0 and be non-empty")
        if indptr[-1] != indices.size or weights.size != indices.size:
            raise ParameterError("indptr/indices/weights sizes are inconsistent")
        if np.any(np.diff(indptr) < 0):
            raise ParameterError("indptr must be non-decreasing")
        if weights.size and weights.min() <= 0:
            raise ParameterError("edge weights must be positive")
        for arr in (indptr, indices, weights):
            arr.setflags(write=False)
        self._indptr = indptr
        self._indices = indices
        self._weights = weights

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int, float]],
        num_nodes: int | None = None,
    ) -> "WeightedDiGraph":
        """Build from ``(source, target, weight)`` triples.

        Directed: ``(u, v, w)`` adds only the out-edge ``u -> v``.  Repeats
        of the same ordered pair accumulate their weights.  Self-loops are
        rejected (they would make the L-hop walk semantics ambiguous).
        """
        rows: list[tuple[int, int, float]] = []
        max_node = -1
        for u, v, w in edges:
            u, v, w = int(u), int(v), float(w)
            if u < 0 or v < 0:
                raise GraphFormatError("node ids must be non-negative")
            if u == v:
                raise GraphFormatError(f"self-loop on node {u}")
            if not w > 0:
                raise GraphFormatError(f"non-positive weight on edge ({u}, {v})")
            rows.append((u, v, w))
            max_node = max(max_node, u, v)
        inferred = max_node + 1
        if num_nodes is None:
            num_nodes = inferred
        elif num_nodes < inferred:
            raise ParameterError(
                f"num_nodes={num_nodes} is smaller than required {inferred}"
            )
        merged: dict[tuple[int, int], float] = {}
        for u, v, w in rows:
            merged[(u, v)] = merged.get((u, v), 0.0) + w
        ordered = sorted(merged.items())
        src = np.array([u for (u, _), _ in ordered], dtype=np.int64)
        dst = np.array([v for (_, v), _ in ordered], dtype=np.int32)
        wgt = np.array([w for _, w in ordered], dtype=np.float64)
        counts = np.bincount(src, minlength=num_nodes) if src.size else np.zeros(
            num_nodes, dtype=np.int64
        )
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(indptr, dst, wgt)

    @classmethod
    def from_undirected(cls, graph, weight: float = 1.0) -> "WeightedDiGraph":
        """Lift an unweighted :class:`~repro.graphs.adjacency.Graph` into the
        weighted model (each undirected edge becomes two unit arcs) —
        useful for cross-checking the weighted code path against the
        unweighted one."""
        if weight <= 0:
            raise ParameterError("weight must be positive")
        weights = np.full(graph.indices.size, float(weight))
        return cls(graph.indptr.copy(), graph.indices.copy(), weights)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._indptr.size - 1

    @property
    def num_arcs(self) -> int:
        """Number of directed edges (arcs)."""
        return self._indices.size

    @property
    def indptr(self) -> np.ndarray:
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        return self._indices

    @property
    def weights(self) -> np.ndarray:
        return self._weights

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree (arc count) per node."""
        return np.diff(self._indptr)

    def out_neighbors(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """``(targets, weights)`` of the out-edges of ``u``."""
        self._check_node(u)
        lo, hi = self._indptr[u], self._indptr[u + 1]
        return self._indices[lo:hi], self._weights[lo:hi]

    def out_strength(self, u: int) -> float:
        """Total out-weight of ``u`` (0 for dangling nodes)."""
        _, weights = self.out_neighbors(u)
        return float(weights.sum())

    def arcs(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(source, target, weight)`` triples."""
        for u in range(self.num_nodes):
            targets, weights = self.out_neighbors(u)
            for v, w in zip(targets, weights):
                yield u, int(v), float(w)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        return f"WeightedDiGraph(n={self.num_nodes}, arcs={self.num_arcs})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedDiGraph):
            return NotImplemented
        return (
            np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
            and np.allclose(self._weights, other._weights)
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self.num_arcs, self._indices.tobytes()))

    # ------------------------------------------------------------------
    def _check_node(self, u: int) -> None:
        if not 0 <= u < self.num_nodes:
            raise ParameterError(f"node {u} out of range [0, {self.num_nodes})")
