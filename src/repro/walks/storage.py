"""Storage backends for :class:`~repro.walks.index.FlatWalkIndex` (DESIGN.md §13).

The flat index is three arrays — ``indptr`` (CSR-by-hit-node), ``state``
and ``hop`` — and every consumer reads them either whole (kernel
construction) or as one hit node's slice (per-candidate gains).  That
access pattern is the seam this module abstracts: a *storage* object owns
the entry arrays and answers

* ``state_array()`` / ``hop_array()`` — the full arrays, and
* ``range_arrays(lo_node, hi_node)`` — the concatenated entries of a
  contiguous hit-node range,

so the index can swap the physical representation without any consumer
noticing.  Three backends:

* :class:`DenseStorage` — the original in-RAM arrays (the default; every
  builder still produces this).
* :class:`CompressedStorage` — delta-encoded entries.  Entries have been
  emitted in canonical ``(hit, state)`` order since the walk backends
  were unified, so within one hit node's block the states are strictly
  increasing and the gaps ``state[j] - state[j-1] - 1 >= 0`` are small;
  each block stores its first state in ``heads`` and the gaps bit-packed
  at the block's exact maximum gap width (0..63 bits, word-aligned per
  block so one block decodes from a self-contained ``uint64`` slice).
  Hops are bounded by ``L`` and pack at one global fixed width.  Decode
  is exact, so every downstream quantity is bit-identical to dense.
* :class:`MmapStorage` — read-only ``np.memmap`` views over a
  persistence-v3 archive (:mod:`repro.walks.persistence`), optionally
  carrying the packed hit rows pre-built at save time.  Nothing is
  materialized until a consumer touches it, and nothing can be written
  back: the arrays are opened ``mode="r"``.

The bit-packing discipline mirrors :class:`~repro.walks.parallel.SharedArrayPack`'s
buffer-layout contract — a flat word buffer plus an offsets table, every
region independently addressable — applied to sub-word values instead of
whole arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError

__all__ = [
    "INDEX_FORMATS",
    "validate_index_format",
    "entry_state_dtype",
    "DenseStorage",
    "CompressedStorage",
    "MmapStorage",
    "block_delta_encode",
    "pack_value_blocks",
    "unpack_value_blocks",
]

#: The index representations selectable via ``--index-format`` (CLI) and
#: ``save_index(format=...)``: ``dense`` is the in-RAM default, the other
#: two are the beyond-RAM variants of ROADMAP item 3.
INDEX_FORMATS = ("dense", "compressed", "mmap")

# frexp (the elementwise bit-width primitive below) is exact only while
# values round-trip through float64; states are node*replicate indexes,
# so this bound is never near in practice but is asserted anyway.
_MAX_EXACT = 1 << 53


def validate_index_format(name: str) -> str:
    """Return ``name`` if it is a known index format, else raise."""
    if name not in INDEX_FORMATS:
        raise ParameterError(
            f"unknown index format {name!r}; expected one of {INDEX_FORMATS}"
        )
    return name


def entry_state_dtype(num_nodes: int, num_replicates: int) -> np.dtype:
    """The dtype every builder stores entry states in.

    ``int32`` while the state space ``n * R`` fits, ``int64`` past it —
    one rule shared by the in-memory assembler
    (``FlatWalkIndex._from_records``) and the out-of-core archive writer
    (:mod:`repro.walks.build`), so the two paths can never disagree on
    the bytes an archive holds.
    """
    return np.dtype(
        np.int32
        if num_nodes * num_replicates < np.iinfo(np.int32).max
        else np.int64
    )


def _bit_widths(values: np.ndarray) -> np.ndarray:
    """Elementwise bit length of non-negative integers (0 for 0)."""
    # frexp(v) = (m, e) with v = m * 2**e and 0.5 <= m < 1, so e is the
    # bit length; exact for v < 2**53 (guarded by callers).
    return np.frexp(values.astype(np.float64))[1].astype(np.int64)


def _block_locals(counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-value ``(block_id, local_index)`` for block-major value streams."""
    total = int(counts.sum())
    block_of = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    starts = np.cumsum(counts) - counts
    local = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
    return block_of, local


def pack_value_blocks(
    values: np.ndarray, counts: np.ndarray, widths: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Bit-pack block-major values into word-aligned ``uint64`` regions.

    ``values`` holds ``counts[b]`` non-negative integers per block ``b``,
    concatenated in block order; block ``b`` packs at ``widths[b]`` bits
    per value (its values must fit — callers derive widths from the block
    maxima).  Width-0 blocks store nothing and decode as zeros.  Returns
    ``(words, wordptr)``: block ``b`` owns ``words[wordptr[b]:wordptr[b+1]]``
    and ``words`` carries one extra zero pad word so decoders may read
    ``words[i + 1]`` for any in-range ``i`` without a bounds check.
    """
    counts = counts.astype(np.int64)
    widths = widths.astype(np.int64)
    word_counts = (counts * widths + 63) >> 6
    wordptr = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(word_counts, out=wordptr[1:])
    words = np.zeros(int(wordptr[-1]) + 1, dtype=np.uint64)
    if values.size == 0:
        return words, wordptr
    block_of, local = _block_locals(counts)
    width_of = widths[block_of]
    nz = width_of > 0
    if not nz.any():
        return words, wordptr
    vals = values.astype(np.int64)[nz]
    if vals.size and (vals.min() < 0 or int(vals.max()) >= _MAX_EXACT):
        raise ParameterError("pack_value_blocks: values out of codec range")
    width_nz = width_of[nz].astype(np.uint64)
    bitpos = local[nz] * width_of[nz]
    word_index = wordptr[block_of[nz]] + (bitpos >> 6)
    offset = (bitpos & 63).astype(np.uint64)
    unsigned = vals.astype(np.uint64)
    np.bitwise_or.at(words, word_index, unsigned << offset)
    spill = offset + width_nz > 64
    if spill.any():
        np.bitwise_or.at(
            words,
            word_index[spill] + 1,
            unsigned[spill] >> (np.uint64(64) - offset[spill]),
        )
    return words, wordptr


def unpack_value_blocks(
    words: np.ndarray,
    wordptr: np.ndarray,
    widths: np.ndarray,
    counts: np.ndarray,
    blocks: np.ndarray,
) -> np.ndarray:
    """Decode the packed values of ``blocks`` (concatenated, block order).

    Inverse of :func:`pack_value_blocks` restricted to a block subset;
    ``widths``/``counts``/``wordptr`` are the full per-block tables.  The
    decode is a handful of vectorized gathers and shifts — no per-block
    Python loop — which is what keeps the per-candidate query path on
    compressed storage within the benchmarked slowdown budget.
    """
    cnt = counts[blocks].astype(np.int64)
    total = int(cnt.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    pos_of, local = _block_locals(cnt)
    width_of = widths[blocks].astype(np.int64)[pos_of]
    base = wordptr[blocks][pos_of]
    nz = width_of > 0
    if nz.all():
        # Common case (every decoded block has payload bits): skip the
        # five boolean-mask gathers of the general path — they dominate
        # full-array decode time.
        return _unpack_values(words, base, width_of, local)
    out = np.zeros(total, dtype=np.int64)
    if not nz.any():
        return out
    out[nz] = _unpack_values(
        words, base[nz], width_of[nz], local[nz]
    )
    return out


def _unpack_values(
    words: np.ndarray,
    base: np.ndarray,
    width_of: np.ndarray,
    local: np.ndarray,
) -> np.ndarray:
    """Gather-decode values with per-value word base/width/position (all
    widths nonzero).  In-place arithmetic; dtype changes are views, not
    copies — this path decodes millions of entries per full-array pass."""
    bitpos = local * width_of
    word_index = base + (bitpos >> 6)
    offset = (bitpos & 63).view(np.uint64)
    width_u = width_of.view(np.uint64)
    low = words[word_index] >> offset
    need_high = (offset + width_u).view(np.int64) > 64
    if need_high.any():
        # offset > 0 whenever a value spills (width <= 63), so the left
        # shift count 64 - offset stays in [1, 63].
        high = np.zeros_like(low)
        high[need_high] = words[word_index[need_high] + 1] << (
            np.uint64(64) - offset[need_high]
        )
        low |= high
    low &= (np.uint64(1) << width_u) - np.uint64(1)
    return low.view(np.int64)


def block_delta_encode(
    state64: np.ndarray, counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-block delta encoding of canonical-order states.

    ``state64`` holds ``counts[b]`` states per block ``b``, concatenated
    in block order and strictly increasing within each block (canonical
    ``(hit, state)`` order — violations raise).  Returns
    ``(heads, delta_widths, gaps, gap_counts)``: each block's first
    state, the exact bit width of its largest gap
    (``state[j] - state[j-1] - 1``), and the gap stream ready for
    :func:`pack_value_blocks`.  Shared by
    :meth:`CompressedStorage.from_arrays` and the incremental v3 writer
    (:mod:`repro.walks.build`) — the codec is per-block, so the writer
    can encode any *complete* run of blocks with this function and
    concatenate the word regions, landing on the same bytes a whole-index
    encode produces.
    """
    counts = counts.astype(np.int64)
    n = counts.size
    total = int(counts.sum())
    starts = np.cumsum(counts) - counts
    heads = np.zeros(n, dtype=np.int64)
    nonempty = counts > 0
    heads[nonempty] = state64[starts[nonempty]]
    # Gaps between consecutive states of the same block.  np.diff over
    # the whole stream also produces cross-block differences at block
    # boundaries; mask them out by entry position.
    if total > 1:
        diffs = np.diff(state64)
        is_start = np.zeros(total, dtype=bool)
        is_start[starts[nonempty]] = True
        interior = ~is_start
        interior[0] = False
        gaps = diffs[interior[1:]] - 1
        if gaps.size and int(gaps.min()) < 0:
            raise ParameterError(
                "entries are not in canonical (hit, state) order; "
                "rebuild the index before compressing (legacy archives "
                "kept insertion order)"
            )
        owners = np.repeat(np.arange(n, dtype=np.int64), counts)[interior]
        block_max = np.zeros(n, dtype=np.int64)
        np.maximum.at(block_max, owners, gaps)
    else:
        gaps = np.zeros(0, dtype=np.int64)
        block_max = np.zeros(n, dtype=np.int64)
    delta_widths = _bit_widths(block_max).astype(np.uint8)
    gap_counts = np.maximum(counts - 1, 0)
    return heads, delta_widths, gaps, gap_counts


def _unpack_region(
    words: np.ndarray, base_word: int, width: int, count: int
) -> np.ndarray:
    """Decode one block's ``count`` values at ``width`` bits — the lean
    single-block path behind per-candidate queries (no block tables)."""
    bitpos = np.arange(0, count * width, width, dtype=np.int64)
    word_index = base_word + (bitpos >> 6)
    offset = (bitpos & 63).view(np.uint64)
    low = words[word_index] >> offset
    # A fixed width that divides 64 packs on clean lanes — no spills.
    if 64 % width:
        need_high = offset + np.uint64(width) > 64
        if need_high.any():
            # Masking the shift keeps it in [0, 63]; the offset-0 lanes
            # it wraps are exactly the ones ``need_high`` discards.
            shift = (np.uint64(64) - offset) & np.uint64(63)
            low |= np.where(
                need_high, words[word_index + 1] << shift, np.uint64(0)
            )
    low &= (np.uint64(1) << np.uint64(width)) - np.uint64(1)
    return low.view(np.int64)


class DenseStorage:
    """The original in-RAM entry arrays — zero indirection cost."""

    format_name = "dense"

    def __init__(self, indptr: np.ndarray, state: np.ndarray, hop: np.ndarray):
        self.indptr = indptr
        self._state = state
        self._hop = hop

    @property
    def num_entries(self) -> int:
        return int(self._state.size)

    @property
    def nbytes(self) -> int:
        return int(self._state.nbytes + self._hop.nbytes)

    def state_array(self) -> np.ndarray:
        return self._state

    def hop_array(self) -> np.ndarray:
        return self._hop

    def range_arrays(self, lo_node: int, hi_node: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = int(self.indptr[lo_node]), int(self.indptr[hi_node])
        return self._state[lo:hi], self._hop[lo:hi]

    def range_states(self, lo_node: int, hi_node: int) -> np.ndarray:
        lo, hi = int(self.indptr[lo_node]), int(self.indptr[hi_node])
        return self._state[lo:hi]


class MmapStorage(DenseStorage):
    """Read-only memmap views over a persistence-v3 archive.

    Shares :class:`DenseStorage`'s access paths (the arrays behave like
    plain ndarrays, paged in lazily by the kernel) but reports its own
    format name and may carry the archive's pre-built packed hit rows —
    also a read-only map, handed to the coverage kernel as-is so a served
    query can never write through to the archive.  Lifetime: the maps
    hold the only reference to the open file; dropping the index drops
    the maps and closes it (no explicit close, mirroring how
    :class:`~repro.walks.parallel.SharedArrayPack` views pin their
    shared-memory segment).
    """

    format_name = "mmap"

    def __init__(
        self,
        indptr: np.ndarray,
        state: np.ndarray,
        hop: np.ndarray,
        rows: "np.ndarray | None" = None,
        source: "str | None" = None,
        compressed_rows=None,
    ):
        super().__init__(indptr, state, hop)
        self.rows = rows
        #: Archive-backed :class:`~repro.walks.rows.CompressedRows`, for
        #: archives past the dense row cap (at most one of ``rows`` /
        #: ``compressed_rows`` is stored).
        self.compressed_rows = compressed_rows
        self.source = source

    @property
    def nbytes(self) -> int:
        # Mapped address space, not resident bytes — the arrays live in
        # the archive and page in on demand.
        total = int(self._state.nbytes + self._hop.nbytes)
        if self.rows is not None:
            total += int(self.rows.nbytes)
        if self.compressed_rows is not None:
            total += int(self.compressed_rows.nbytes)
        return total


class CompressedStorage:
    """Per-block exact-width delta codec over canonical entry order.

    Layout (all little-endian, word-aligned per block):

    ``heads``        ``int64[n]``   first state of each hit node's block
    ``delta_widths`` ``uint8[n]``   bits per gap in the block (0..63)
    ``delta_words``  ``uint64[Wd+1]`` packed gaps ``state[j]-state[j-1]-1``
    ``delta_wordptr````int64[n+1]`` word region of each block's gaps
    ``hop_words``    ``uint64[Wh+1]`` packed hops at one global width
    ``hop_wordptr``  ``int64[n+1]`` word region of each block's hops
    ``hop_width``    scalar         ``bit_length(max hop)``

    A block of ``c`` entries stores ``c - 1`` gaps (the head is explicit),
    so singleton blocks cost ``8 + 1`` bytes plus their hop bits.  The
    trailing ``+1`` pad word in each word array lets the decoder read one
    word past any region unconditionally.
    """

    format_name = "compressed"

    def __init__(
        self,
        indptr: np.ndarray,
        heads: np.ndarray,
        delta_widths: np.ndarray,
        delta_words: np.ndarray,
        delta_wordptr: np.ndarray,
        hop_width: int,
        hop_words: np.ndarray,
        hop_wordptr: np.ndarray,
        state_dtype: np.dtype,
    ):
        self.indptr = indptr
        self.heads = heads
        self.delta_widths = delta_widths
        self.delta_words = delta_words
        self.delta_wordptr = delta_wordptr
        self.hop_width = int(hop_width)
        self.hop_words = hop_words
        self.hop_wordptr = hop_wordptr
        self.state_dtype = np.dtype(state_dtype)
        # Cached per-block tables so a per-candidate decode costs O(block),
        # not an O(n) diff over indptr per query.
        self._counts = np.diff(indptr).astype(np.int64)
        self._gap_counts = np.maximum(self._counts - 1, 0)
        self._hop_widths = np.full(
            self._counts.size, self.hop_width, dtype=np.int64
        )
        # Decoded-block cache for the per-candidate hot path: greedy and
        # serve both hammer a hot set of high-degree candidates, so
        # steady-state queries shouldn't pay the decode twice.  The
        # budget is half the entry count — state bytes only, hops are
        # never cached — so even fully warm the codec arrays plus cache
        # stay well under the dense footprint, and the cache is
        # transient query memory, not part of the representation.
        # Eviction is FIFO; cached arrays are shared between callers and
        # therefore frozen read-only.
        self._state_cache: dict[int, np.ndarray] = {}
        self._state_cache_entries = 0
        self._state_cache_budget = max(4096, int(self.indptr[-1]) // 2)

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls, indptr: np.ndarray, state: np.ndarray, hop: np.ndarray
    ) -> "CompressedStorage":
        """Compress dense entry arrays (requires canonical entry order)."""
        counts = np.diff(indptr).astype(np.int64)
        n = counts.size
        state64 = state.astype(np.int64)
        hop64 = hop.astype(np.int64)
        total = int(indptr[-1])
        if total and (
            int(state64.min()) < 0 or int(state64.max()) >= _MAX_EXACT
        ):
            raise ParameterError("state ids out of compressible range")
        if total and int(hop64.min()) < 0:
            raise ParameterError("negative hops cannot be compressed")
        heads, delta_widths, gaps, gap_counts = block_delta_encode(
            state64, counts
        )
        delta_words, delta_wordptr = pack_value_blocks(
            gaps, gap_counts, delta_widths
        )
        hop_width = int(_bit_widths(hop64.max(initial=0))) if total else 0
        hop_words, hop_wordptr = pack_value_blocks(
            hop64, counts, np.full(n, hop_width, dtype=np.int64)
        )
        return cls(
            indptr=indptr,
            heads=heads,
            delta_widths=delta_widths,
            delta_words=delta_words,
            delta_wordptr=delta_wordptr,
            hop_width=hop_width,
            hop_words=hop_words,
            hop_wordptr=hop_wordptr,
            state_dtype=state.dtype,
        )

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return int(self.indptr[-1])

    @property
    def nbytes(self) -> int:
        return int(
            self.heads.nbytes
            + self.delta_widths.nbytes
            + self.delta_words.nbytes
            + self.delta_wordptr.nbytes
            + self.hop_words.nbytes
            + self.hop_wordptr.nbytes
        )

    def arrays(self) -> dict:
        """The codec arrays by name (the persistence-v3 write set)."""
        return {
            "heads": self.heads,
            "delta_widths": self.delta_widths,
            "delta_words": self.delta_words,
            "delta_wordptr": self.delta_wordptr,
            "hop_words": self.hop_words,
            "hop_wordptr": self.hop_wordptr,
        }

    def state_array(self) -> np.ndarray:
        return self._decode_states(0, self.indptr.size - 1)

    def hop_array(self) -> np.ndarray:
        return self._decode_hops(0, self.indptr.size - 1)

    def range_arrays(self, lo_node: int, hi_node: int) -> tuple[np.ndarray, np.ndarray]:
        if hi_node - lo_node == 1:
            return (
                self._decode_one_states(lo_node),
                self._decode_one_hops(lo_node),
            )
        return (
            self._decode_states(lo_node, hi_node),
            self._decode_hops(lo_node, hi_node),
        )

    def range_states(self, lo_node: int, hi_node: int) -> np.ndarray:
        if hi_node - lo_node == 1:
            return self._decode_one_states(lo_node)
        return self._decode_states(lo_node, hi_node)

    # ------------------------------------------------------------------
    def _decode_one_states(self, node: int) -> np.ndarray:
        """One block's states, skipping the multi-block table machinery —
        this is the CELF per-candidate hot path on compressed storage.
        Returns a read-only array (hits may share a cached block)."""
        cached = self._state_cache.get(node)
        if cached is not None:
            return cached
        count = int(self._counts[node])
        if count == 0:
            return np.zeros(0, dtype=self.state_dtype)
        head = int(self.heads[node])
        width = int(self.delta_widths[node])
        states = np.empty(count, dtype=np.int64)
        states[0] = 0
        if count > 1:
            if width:
                gaps = _unpack_region(
                    self.delta_words,
                    int(self.delta_wordptr[node]),
                    width,
                    count - 1,
                )
                np.cumsum(gaps + 1, out=states[1:])
            else:
                states[1:] = np.arange(1, count, dtype=np.int64)
        states += head
        states = states.astype(self.state_dtype)
        states.flags.writeable = False
        cache = self._state_cache
        if count <= self._state_cache_budget:
            while self._state_cache_entries + count > self._state_cache_budget:
                evicted = cache.pop(next(iter(cache)))
                self._state_cache_entries -= evicted.size
            cache[node] = states
            self._state_cache_entries += count
        return states

    def _decode_one_hops(self, node: int) -> np.ndarray:
        count = int(self._counts[node])
        if count == 0 or self.hop_width == 0:
            return np.zeros(count, dtype=np.int16)
        hops = _unpack_region(
            self.hop_words,
            int(self.hop_wordptr[node]),
            self.hop_width,
            count,
        )
        return hops.astype(np.int16)

    def _decode_states(self, lo_node: int, hi_node: int) -> np.ndarray:
        return self._decode_states_blocks(
            np.arange(lo_node, hi_node, dtype=np.int64)
        )

    def _decode_states_blocks(self, blocks: np.ndarray) -> np.ndarray:
        cnt = self._counts[blocks]
        total = int(cnt.sum())
        if total == 0:
            return np.zeros(0, dtype=self.state_dtype)
        gaps = unpack_value_blocks(
            self.delta_words,
            self.delta_wordptr,
            self.delta_widths,
            self._gap_counts,
            blocks,
        )
        # Rebuild each block's states as head + running sum of (gap + 1):
        # lay the increments out entry-major (0 at each block's first
        # entry), cumsum globally, then subtract each block's offset.
        increments = np.zeros(total, dtype=np.int64)
        starts = np.cumsum(cnt) - cnt
        is_start = np.zeros(total, dtype=bool)
        is_start[starts[cnt > 0]] = True
        increments[~is_start] = gaps + 1
        running = np.cumsum(increments)
        base = np.repeat(running[np.minimum(starts, total - 1)], cnt)
        head_rep = np.repeat(self.heads[blocks], cnt)
        return (head_rep + (running - base)).astype(self.state_dtype)

    def _decode_hops(self, lo_node: int, hi_node: int) -> np.ndarray:
        blocks = np.arange(lo_node, hi_node, dtype=np.int64)
        hops = unpack_value_blocks(
            self.hop_words,
            self.hop_wordptr,
            self._hop_widths,
            self._counts,
            blocks,
        )
        return hops.astype(np.int16)
