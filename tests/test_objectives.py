"""Tests for the F1/F2 objectives: values, monotonicity, submodularity."""

import itertools

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import paper_example_graph, star_graph
from repro.core.objectives import F1Objective, F2Objective, SampledF1, SampledF2


def all_subsets(nodes, max_size):
    for size in range(max_size + 1):
        yield from itertools.combinations(nodes, size)


class TestValues:
    def test_f_empty_is_zero(self, small_power_law):
        assert F1Objective(small_power_law, 5).value(set()) == pytest.approx(0.0)
        assert F2Objective(small_power_law, 5).value(set()) == pytest.approx(0.0)

    def test_f_full_set(self, small_power_law):
        n = small_power_law.num_nodes
        assert F1Objective(small_power_law, 5).value(range(n)) == pytest.approx(
            n * 5
        )
        assert F2Objective(small_power_law, 5).value(range(n)) == pytest.approx(n)

    def test_f2_at_least_set_size(self, small_power_law):
        assert F2Objective(small_power_law, 4).value({1, 2, 3}) >= 3.0

    def test_f2_at_most_n(self, small_power_law):
        value = F2Objective(small_power_law, 9).value({1, 2, 3})
        assert value <= small_power_law.num_nodes + 1e-9

    def test_star_center_dominates(self):
        g = star_graph(6)
        f2 = F2Objective(g, 1)
        # Every leaf hits the center in one hop: F2({center}) = n.
        assert f2.value({0}) == pytest.approx(7.0)
        # A leaf is hit in one hop only by the center walk w.p. 1/6.
        assert f2.value({1}) == pytest.approx(1 + 1 / 6 + 0 * 5)

    def test_length_zero(self, small_power_law):
        assert F1Objective(small_power_law, 0).value({1}) == 0.0
        assert F2Objective(small_power_law, 0).value({1}) == 1.0

    def test_negative_length_rejected(self, small_power_law):
        with pytest.raises(ParameterError):
            F1Objective(small_power_law, -1)


class TestMonotonicity:
    @pytest.mark.parametrize("objective_cls", [F1Objective, F2Objective])
    def test_nondecreasing(self, objective_cls):
        g = paper_example_graph()
        objective = objective_cls(g, 4)
        for subset in all_subsets(range(8), 2):
            base = objective.value(set(subset))
            for extra in range(8):
                if extra in subset:
                    continue
                assert objective.value(set(subset) | {extra}) >= base - 1e-9


class TestSubmodularity:
    @pytest.mark.parametrize("objective_cls", [F1Objective, F2Objective])
    def test_diminishing_returns(self, objective_cls):
        # sigma_u(S) >= sigma_u(T) for S subset T (Theorems 3.1/3.2),
        # checked exhaustively on the paper's 8-node example.
        g = paper_example_graph()
        objective = objective_cls(g, 3)
        nodes = range(8)
        for small in all_subsets(nodes, 1):
            small = set(small)
            for extra in nodes:
                if extra in small:
                    continue
                big = small | {extra}
                for u in nodes:
                    if u in big:
                        continue
                    gain_small = objective.marginal_gain(small, u)
                    gain_big = objective.marginal_gain(big, u)
                    assert gain_small >= gain_big - 1e-9


class TestMarginalGainCache:
    def test_cached_base_matches_recompute(self, small_power_law):
        objective = F1Objective(small_power_law, 4)
        s = {1, 2}
        first = objective.marginal_gain(s, 5)
        # Second call with the same base set uses the cache; must agree.
        second = objective.marginal_gain(s, 5)
        assert first == second
        direct = objective.value(s | {5}) - objective.value(s)
        assert first == pytest.approx(direct)

    def test_cache_invalidation_on_new_set(self, small_power_law):
        objective = F1Objective(small_power_law, 4)
        g1 = objective.marginal_gain({1}, 5)
        g2 = objective.marginal_gain({1, 5}, 7)
        direct = objective.value({1, 5, 7}) - objective.value({1, 5})
        assert g2 == pytest.approx(direct)
        assert g1 != g2  # sanity: different query


class TestSampledObjectives:
    def test_sampled_f1_close_to_exact(self, small_power_law):
        exact = F1Objective(small_power_law, 5).value({0, 9})
        sampled = SampledF1(small_power_law, 5, 4000, seed=1).value({0, 9})
        assert sampled == pytest.approx(exact, rel=0.05)

    def test_sampled_f2_close_to_exact(self, small_power_law):
        exact = F2Objective(small_power_law, 5).value({0, 9})
        sampled = SampledF2(small_power_law, 5, 4000, seed=2).value({0, 9})
        assert sampled == pytest.approx(exact, rel=0.05)

    def test_estimate_counter(self, small_power_law):
        objective = SampledF1(small_power_law, 3, 10, seed=3)
        objective.value({1})
        objective.marginal_gain({1}, 2)  # two evaluations (no base cache)
        assert objective.num_estimates == 3

    def test_bad_sample_count(self, small_power_law):
        with pytest.raises(ParameterError):
            SampledF1(small_power_law, 3, 0)

    def test_num_nodes_property(self, small_power_law):
        assert (
            F1Objective(small_power_law, 3).num_nodes
            == small_power_law.num_nodes
        )
