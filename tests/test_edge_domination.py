"""Edge domination (future-work Problem F3): index, engine, greedy, metrics."""

import numpy as np
import pytest

import repro
from repro.core.edge_domination import (
    EdgeDominationEngine,
    EdgeWalkIndex,
    edge_domination_greedy,
    estimate_f3,
    expected_edges_traversed,
    prefix_edge_counts,
)
from repro.errors import ParameterError
from repro.graphs.generators import (
    complete_graph,
    paper_example_graph,
    path_graph,
    power_law_graph,
    ring_graph,
    star_graph,
)
from repro.walks.engine import batch_walks
from repro.walks.index import walker_major_starts


def reference_prefix_counts(walks):
    """Straightforward set-based oracle for prefix_edge_counts."""
    walks = np.asarray(walks)
    batch, width = walks.shape
    counts = np.zeros((batch, width), dtype=np.int64)
    for b in range(batch):
        seen = set()
        for t in range(1, width):
            u, v = int(walks[b, t - 1]), int(walks[b, t])
            if u != v:
                seen.add((min(u, v), max(u, v)))
            counts[b, t] = len(seen)
    return counts


def reference_f3(walks, num_nodes, num_replicates, targets, length):
    """Oracle F3: traffic saved per walk, averaged over replicates."""
    counts = reference_prefix_counts(walks)
    target_set = set(targets)
    total = 0
    for b, walk in enumerate(np.asarray(walks)):
        stop = length
        for t, node in enumerate(walk):
            if int(node) in target_set:
                stop = t
                break
        total += counts[b, length] - counts[b, stop]
    return total / num_replicates


class TestPrefixEdgeCounts:
    def test_matches_reference_on_random_walks(self):
        graph = power_law_graph(60, 180, seed=3)
        walks = batch_walks(graph, np.arange(60).repeat(5), 8, seed=11)
        np.testing.assert_array_equal(
            prefix_edge_counts(walks), reference_prefix_counts(walks)
        )

    def test_simple_path_walk(self):
        # 0-1-2-3: every hop is a fresh edge.
        walks = np.array([[0, 1, 2, 3]])
        np.testing.assert_array_equal(
            prefix_edge_counts(walks), [[0, 1, 2, 3]]
        )

    def test_backtracking_reuses_edge(self):
        # 0-1-0-1: edge {0,1} traversed three times but counted once.
        walks = np.array([[0, 1, 0, 1]])
        np.testing.assert_array_equal(
            prefix_edge_counts(walks), [[0, 1, 1, 1]]
        )

    def test_stay_put_hops_count_nothing(self):
        walks = np.array([[4, 4, 4]])
        np.testing.assert_array_equal(prefix_edge_counts(walks), [[0, 0, 0]])

    def test_zero_length_walks(self):
        walks = np.array([[0], [1]])
        np.testing.assert_array_equal(prefix_edge_counts(walks), [[0], [0]])

    def test_rejects_non_matrix(self):
        with pytest.raises(ParameterError):
            prefix_edge_counts(np.array([0, 1, 2]))

    def test_directionality_is_ignored(self):
        # Traversing u->v and later v->u is the same undirected edge.
        walks = np.array([[0, 1, 2, 1, 0]])
        np.testing.assert_array_equal(
            prefix_edge_counts(walks), [[0, 1, 2, 2, 2]]
        )


class TestEdgeWalkIndex:
    def test_build_shapes(self):
        graph = ring_graph(10)
        index = EdgeWalkIndex.build(graph, length=4, num_replicates=3, seed=1)
        assert index.num_nodes == 10
        assert index.length == 4
        assert index.num_replicates == 3
        assert index.prefix.shape == (30, 5)
        assert index.indptr.size == 11

    def test_from_walks_round_trip(self):
        walks = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 1, 0],
            [2, 0, 1],
        ]
        index = EdgeWalkIndex.from_walks(walks, num_nodes=3, num_replicates=2)
        # Walk 0 (walker 0, rep 0) visits 1 at hop 1, 2 at hop 2.
        state, hop = index.entries_for(1)
        records = sorted(zip(state.tolist(), hop.tolist()))
        # states: rep * 3 + walker
        assert (0 * 3 + 0, 1) in records  # walk 0 hits node 1 at hop 1
        assert (0 * 3 + 2, 1) in records  # walker 2 rep 0 hits 1 at hop 1

    def test_from_walks_rejects_wrong_count(self):
        with pytest.raises(ParameterError):
            EdgeWalkIndex.from_walks([[0, 1]], num_nodes=2, num_replicates=1)

    def test_from_walks_rejects_wrong_start(self):
        with pytest.raises(ParameterError):
            EdgeWalkIndex.from_walks(
                [[1, 0], [1, 0]], num_nodes=2, num_replicates=1
            )

    def test_entries_for_out_of_range(self):
        graph = ring_graph(5)
        index = EdgeWalkIndex.build(graph, 2, 1, seed=0)
        with pytest.raises(ParameterError):
            index.entries_for(5)

    def test_rejects_bad_params(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            EdgeWalkIndex.build(graph, length=-1, num_replicates=1)
        with pytest.raises(ParameterError):
            EdgeWalkIndex.build(graph, length=2, num_replicates=0)


class TestEdgeDominationEngine:
    def _engine_from_walks(self, walks, num_nodes, num_replicates):
        index = EdgeWalkIndex.from_walks(walks, num_nodes, num_replicates)
        return EdgeDominationEngine(index), walks

    def test_objective_starts_at_zero(self):
        graph = ring_graph(8)
        index = EdgeWalkIndex.build(graph, 3, 2, seed=5)
        engine = EdgeDominationEngine(index)
        assert engine.objective_value() == 0.0

    def test_gain_matches_objective_delta(self):
        """gain_of(u) / R must equal F3(S + u) - F3(S) on the same walks."""
        graph = power_law_graph(40, 120, seed=9)
        length, reps = 5, 4
        starts = walker_major_starts(40, reps)
        walks = batch_walks(graph, starts, length, seed=2)
        index = EdgeWalkIndex.from_walks(walks, 40, reps)
        engine = EdgeDominationEngine(index)
        for u in (0, 7, 23):
            before = engine.objective_value()
            expected_after = reference_f3(walks, 40, reps, {u}, length)
            gain = engine.gain_of(u) / reps
            assert gain == pytest.approx(expected_after - before)

    def test_gains_all_matches_gain_of(self):
        graph = power_law_graph(30, 90, seed=4)
        index = EdgeWalkIndex.build(graph, 4, 3, seed=8)
        engine = EdgeDominationEngine(index)
        sweep = engine.gains_all()
        singles = np.array([engine.gain_of(u) for u in range(30)])
        np.testing.assert_array_equal(sweep, singles)

    def test_gains_all_after_selection(self):
        graph = power_law_graph(30, 90, seed=4)
        index = EdgeWalkIndex.build(graph, 4, 3, seed=8)
        engine = EdgeDominationEngine(index)
        engine.select(5)
        sweep = engine.gains_all()
        singles = np.array([engine.gain_of(u) for u in range(30)])
        np.testing.assert_array_equal(sweep, singles)

    def test_objective_tracks_reference_after_selections(self):
        graph = power_law_graph(25, 70, seed=13)
        length, reps = 4, 5
        starts = walker_major_starts(25, reps)
        walks = batch_walks(graph, starts, length, seed=21)
        index = EdgeWalkIndex.from_walks(walks, 25, reps)
        engine = EdgeDominationEngine(index)
        chosen: set[int] = set()
        for u in (3, 11, 19):
            engine.select(u)
            chosen.add(u)
            expected = reference_f3(walks, 25, reps, chosen, length)
            assert engine.objective_value() == pytest.approx(expected)

    def test_select_twice_raises(self):
        graph = ring_graph(6)
        index = EdgeWalkIndex.build(graph, 2, 1, seed=0)
        engine = EdgeDominationEngine(index)
        engine.select(2)
        with pytest.raises(ParameterError):
            engine.select(2)

    def test_lazy_matches_full(self):
        graph = power_law_graph(50, 150, seed=6)
        index = EdgeWalkIndex.build(graph, 5, 3, seed=17)
        full = EdgeDominationEngine(index)
        full.run(8, lazy=False)
        lazy = EdgeDominationEngine(index)
        lazy.run(8, lazy=True)
        assert full.selected == lazy.selected
        assert full.gains == pytest.approx(lazy.gains)
        # CELF must not evaluate more often than the full sweep.
        assert lazy.num_gain_evaluations <= full.num_gain_evaluations

    def test_gains_are_monotone_nonincreasing(self):
        """Greedy gain trace must decrease — empirical submodularity."""
        graph = power_law_graph(60, 200, seed=2)
        result = edge_domination_greedy(graph, 10, 5, num_replicates=10, seed=3)
        gains = list(result.gains)
        assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))


class TestEdgeDominationGreedy:
    def test_basic_run(self):
        graph = power_law_graph(80, 240, seed=5)
        result = edge_domination_greedy(graph, 6, 4, num_replicates=8, seed=9)
        assert result.algorithm == "ApproxF3"
        assert len(result.selected) == 6
        assert len(set(result.selected)) == 6
        assert result.params["objective"] == "f3"

    def test_k_zero(self):
        graph = ring_graph(5)
        result = edge_domination_greedy(graph, 0, 3, num_replicates=2, seed=1)
        assert result.selected == ()

    def test_k_out_of_range(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            edge_domination_greedy(graph, 6, 3, num_replicates=2)

    def test_reuses_prebuilt_index(self):
        graph = ring_graph(12)
        index = EdgeWalkIndex.build(graph, 3, 4, seed=7)
        a = edge_domination_greedy(graph, 3, 3, index=index)
        b = edge_domination_greedy(graph, 3, 3, index=index)
        assert a.selected == b.selected

    def test_index_size_mismatch(self):
        index = EdgeWalkIndex.build(ring_graph(12), 3, 2, seed=7)
        with pytest.raises(ParameterError):
            edge_domination_greedy(ring_graph(10), 2, 3, index=index)

    def test_star_center_wins_first(self):
        """On a star every walk's first hop crosses to/through the center."""
        graph = star_graph(20)
        result = edge_domination_greedy(graph, 1, 4, num_replicates=20, seed=3)
        assert result.selected[0] == 0

    def test_greedy_beats_random_on_saved_traffic(self):
        graph = power_law_graph(150, 500, seed=8)
        k, length = 8, 5
        greedy = edge_domination_greedy(
            graph, k, length, num_replicates=30, seed=4
        )
        rng = np.random.default_rng(12)
        random_set = rng.choice(150, size=k, replace=False)
        f3_greedy = estimate_f3(graph, greedy.selected, length, seed=99)
        f3_random = estimate_f3(graph, random_set, length, seed=99)
        assert f3_greedy > f3_random

    def test_exposed_at_top_level(self):
        assert repro.edge_domination_greedy is edge_domination_greedy
        assert repro.estimate_f3 is estimate_f3


class TestEdgeMetrics:
    def test_estimators_are_consistent(self):
        """estimate_f3 + expected_edges_traversed = baseline traffic."""
        graph = power_law_graph(60, 180, seed=10)
        targets = [0, 5, 9]
        length = 5
        saved = estimate_f3(graph, targets, length, num_replicates=200, seed=31)
        spent = expected_edges_traversed(
            graph, targets, length, num_replicates=200, seed=31
        )
        nothing = expected_edges_traversed(
            graph, (), length, num_replicates=200, seed=31
        )
        assert saved + spent == pytest.approx(nothing)

    def test_empty_targets_save_nothing(self):
        graph = ring_graph(10)
        assert estimate_f3(graph, (), 4, num_replicates=20, seed=1) == 0.0

    def test_full_target_set_saves_everything(self):
        graph = ring_graph(10)
        all_nodes = range(10)
        assert expected_edges_traversed(
            graph, all_nodes, 4, num_replicates=20, seed=1
        ) == 0.0

    def test_matches_reference_oracle(self):
        graph = paper_example_graph()
        length, reps = 4, 50
        starts = walker_major_starts(graph.num_nodes, reps)
        walks = batch_walks(graph, starts, length, seed=77)
        targets = {1, 6}
        expected = reference_f3(walks, graph.num_nodes, reps, targets, length)
        # Same seed -> same walks inside estimate_f3.
        measured = estimate_f3(
            graph, targets, length, num_replicates=reps, seed=77
        )
        assert measured == pytest.approx(expected)

    def test_rejects_bad_targets(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            estimate_f3(graph, [7], 3)
        with pytest.raises(ParameterError):
            expected_edges_traversed(graph, [-1], 3)

    def test_rejects_bad_length(self):
        graph = ring_graph(5)
        with pytest.raises(ParameterError):
            estimate_f3(graph, [0], -1)

    def test_path_graph_traffic_bounded_by_length(self):
        graph = path_graph(20)
        traffic = expected_edges_traversed(
            graph, [0], 6, num_replicates=50, seed=5
        )
        # Each of the 20 walks traverses at most 6 distinct edges.
        assert 0 <= traffic <= 20 * 6

    def test_complete_graph_quick_domination(self):
        """On K_n one hub absorbs a 1/n fraction of first hops."""
        graph = complete_graph(12)
        with_hub = expected_edges_traversed(
            graph, [0], 6, num_replicates=200, seed=6
        )
        without = expected_edges_traversed(
            graph, (), 6, num_replicates=200, seed=6
        )
        assert with_hub < without


class TestSubmodularityOfF3:
    """Empirical monotonicity + submodularity of F3 on fixed walks."""

    def _f3_on_walks(self, walks, num_nodes, reps, targets, length):
        return reference_f3(walks, num_nodes, reps, targets, length)

    def test_monotone_and_submodular(self):
        graph = power_law_graph(20, 60, seed=15)
        length, reps = 4, 6
        starts = walker_major_starts(20, reps)
        walks = batch_walks(graph, starts, length, seed=3)
        rng = np.random.default_rng(44)
        for _ in range(25):
            base = set(rng.choice(20, size=3, replace=False).tolist())
            extra = int(rng.integers(0, 20))
            candidate = int(rng.integers(0, 20))
            bigger = base | {extra}
            if candidate in bigger:
                continue
            f = lambda s: self._f3_on_walks(walks, 20, reps, s, length)
            # Monotone: adding a node never hurts.
            assert f(bigger) >= f(base) - 1e-9
            # Submodular: gain shrinks on the superset.
            gain_small = f(base | {candidate}) - f(base)
            gain_large = f(bigger | {candidate}) - f(bigger)
            assert gain_small >= gain_large - 1e-9
