"""Tests for the vectorized Algorithm 6 engine.

The binding contract: on the same walks, the fast engine must agree with the
paper-faithful reference implementation — same gains, same D state, same
selections — for both problems, and its lazy mode must match its full mode.
"""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.graphs.generators import paper_example_graph, power_law_graph
from repro.walks.engine import batch_walks
from repro.walks.index import FlatWalkIndex, InvertedIndex, walker_major_starts
from repro.core.approx_fast import FastApproxEngine, approx_greedy_fast
from repro.core.approx_greedy import (
    approx_gain,
    approx_greedy,
    initial_distances,
    update_distances,
)
from tests.conftest import EXAMPLE31_ROUND1_GAINS


def shared_indices(graph, replicates, length, seed):
    starts = walker_major_starts(graph.num_nodes, replicates)
    walks = batch_walks(graph, starts, length, seed=seed)
    ref = InvertedIndex.from_walks(walks, graph.num_nodes, replicates)
    flat = FlatWalkIndex.from_walks(walks, graph.num_nodes, replicates)
    return ref, flat


class TestExample31:
    def test_gains_match_paper(self, example_walks):
        flat = FlatWalkIndex.from_walks(example_walks, 8, 1)
        engine = FastApproxEngine(flat, "f1")
        assert engine.gains_all().tolist() == EXAMPLE31_ROUND1_GAINS

    def test_selects_v2_v7(self, example_walks):
        graph = paper_example_graph()
        flat = FlatWalkIndex.from_walks(example_walks, 8, 1)
        result = approx_greedy_fast(graph, 2, 2, index=flat, objective="f1")
        assert result.selected == (1, 6)


class TestAgreesWithReference:
    @pytest.mark.parametrize("objective", ["f1", "f2"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_selection_and_gains(self, objective, seed):
        graph = power_law_graph(40, 120, seed=seed)
        ref_idx, flat_idx = shared_indices(graph, 4, 5, seed)
        ref = approx_greedy(graph, 6, 5, index=ref_idx, objective=objective)
        fast = approx_greedy_fast(
            graph, 6, 5, index=flat_idx, objective=objective, lazy=False
        )
        assert fast.selected == ref.selected
        assert np.allclose(fast.gains, ref.gains)

    @pytest.mark.parametrize("objective", ["f1", "f2"])
    def test_distance_state_matches(self, objective):
        graph = power_law_graph(30, 90, seed=5)
        replicates = 3
        ref_idx, flat_idx = shared_indices(graph, replicates, 4, 5)
        engine = FastApproxEngine(flat_idx, objective)
        distances = initial_distances(ref_idx, objective)
        for node in (2, 11, 17):
            engine.select(node)
            update_distances(ref_idx, distances, node, objective)
            assert engine.distance_matrix().tolist() == distances

    @pytest.mark.parametrize("objective", ["f1", "f2"])
    def test_gains_all_match_reference_gains(self, objective):
        graph = power_law_graph(30, 90, seed=6)
        replicates = 3
        ref_idx, flat_idx = shared_indices(graph, replicates, 4, 6)
        engine = FastApproxEngine(flat_idx, objective)
        engine.select(7)
        distances = initial_distances(ref_idx, objective)
        update_distances(ref_idx, distances, 7, objective)
        fast_gains = engine.gains_all() / replicates
        for u in range(graph.num_nodes):
            if u == 7:
                continue
            assert fast_gains[u] == pytest.approx(
                approx_gain(ref_idx, distances, u, objective), abs=1e-9
            )

    def test_gain_of_matches_gains_all(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 5, 4, seed=8)
        engine = FastApproxEngine(flat, "f1")
        engine.select(3)
        sweep = engine.gains_all()
        for u in (0, 1, 10, 20):
            assert engine.gain_of(u) == sweep[u]


class TestLazyMode:
    @pytest.mark.parametrize("objective", ["f1", "f2"])
    def test_lazy_equals_full(self, objective, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 6, 8, seed=3)
        lazy = approx_greedy_fast(
            small_power_law, 10, 6, index=flat, objective=objective, lazy=True
        )
        full = approx_greedy_fast(
            small_power_law, 10, 6, index=flat, objective=objective, lazy=False
        )
        assert lazy.selected == full.selected
        assert np.allclose(lazy.gains, full.gains)

    def test_lazy_cheaper(self, medium_power_law):
        flat = FlatWalkIndex.build(medium_power_law, 6, 10, seed=4)
        lazy = approx_greedy_fast(
            medium_power_law, 12, 6, index=flat, objective="f1", lazy=True
        )
        full = approx_greedy_fast(
            medium_power_law, 12, 6, index=flat, objective="f1", lazy=False
        )
        assert lazy.num_gain_evaluations < full.num_gain_evaluations


class TestEngineGuards:
    def test_double_select_rejected(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 4, 2, seed=1)
        engine = FastApproxEngine(flat, "f1")
        engine.select(0)
        with pytest.raises(ParameterError):
            engine.select(0)

    def test_bad_objective(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 4, 2, seed=1)
        with pytest.raises(ParameterError):
            FastApproxEngine(flat, "f9")

    def test_gain_of_range_checked(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 4, 2, seed=1)
        engine = FastApproxEngine(flat, "f1")
        with pytest.raises(ParameterError):
            engine.gain_of(10**6)

    def test_run_k_validation(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 4, 2, seed=1)
        engine = FastApproxEngine(flat, "f1")
        with pytest.raises(ParameterError):
            engine.run(small_power_law.num_nodes + 1)

    def test_index_graph_mismatch(self, small_power_law, example_walks):
        flat = FlatWalkIndex.from_walks(example_walks, 8, 1)
        with pytest.raises(ParameterError):
            approx_greedy_fast(small_power_law, 2, 2, index=flat)

    def test_initial_distance_values(self, small_power_law):
        flat = FlatWalkIndex.build(small_power_law, 7, 2, seed=1)
        f1_engine = FastApproxEngine(flat, "f1")
        assert (f1_engine.distance_matrix() == 7).all()
        f2_engine = FastApproxEngine(flat, "f2")
        assert (f2_engine.distance_matrix() == 0).all()


class TestResultMetadata:
    def test_params(self, small_power_law):
        result = approx_greedy_fast(
            small_power_law, 3, 4, num_replicates=6, seed=2, objective="f2"
        )
        assert result.params["R"] == 6
        assert result.params["engine"] == "vectorized"
        assert result.algorithm == "ApproxF2"

    def test_k_zero(self, small_power_law):
        result = approx_greedy_fast(small_power_law, 0, 3, num_replicates=2, seed=1)
        assert result.selected == ()
