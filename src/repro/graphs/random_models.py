"""Additional random-graph families for experiments beyond the paper's.

The paper evaluates on the Barabási–Albert power-law family
(:mod:`repro.graphs.generators`); these models broaden the experimental
surface for ablations and sensitivity studies:

* :func:`watts_strogatz_graph` — small-world rewiring: high clustering with
  short paths, the regime where L-hop reachability changes fastest with the
  rewiring probability.
* :func:`random_regular_graph` — every node identical in degree, which
  neutralizes the ``Degree`` baseline entirely (it degenerates to random
  choice) and isolates what greedy gains from *position* alone.
* :func:`configuration_model_graph` — a simple graph with (approximately) a
  prescribed degree sequence, for replicating a real network's degree
  profile exactly rather than in expectation (cf. Chung–Lu).
* :func:`forest_fire_graph` — Leskovec et al.'s recursive-burning model
  with community-like dense pockets.

All follow the package seed convention and return the immutable CSR
:class:`~repro.graphs.adjacency.Graph`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.graphs.builder import GraphBuilder
from repro.walks.rng import resolve_rng

__all__ = [
    "watts_strogatz_graph",
    "random_regular_graph",
    "configuration_model_graph",
    "forest_fire_graph",
]


def watts_strogatz_graph(
    num_nodes: int,
    nearest_neighbors: int,
    rewire_probability: float,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Watts–Strogatz small-world graph.

    Starts from a ring lattice where each node connects to its
    ``nearest_neighbors`` closest nodes (must be even and less than ``n``),
    then rewires each lattice edge's far endpoint with probability
    ``rewire_probability`` to a uniform non-duplicate target.
    """
    if nearest_neighbors < 2 or nearest_neighbors % 2:
        raise ParameterError("nearest_neighbors must be even and >= 2")
    if num_nodes <= nearest_neighbors:
        raise ParameterError("num_nodes must exceed nearest_neighbors")
    if not 0.0 <= rewire_probability <= 1.0:
        raise ParameterError("rewire_probability must lie in [0, 1]")
    rng = resolve_rng(seed)
    half = nearest_neighbors // 2
    edges: set[tuple[int, int]] = set()
    for u in range(num_nodes):
        for offset in range(1, half + 1):
            v = (u + offset) % num_nodes
            edges.add((min(u, v), max(u, v)))
    rewired: set[tuple[int, int]] = set()
    for u, v in sorted(edges):
        key = (u, v)
        if rng.random() < rewire_probability:
            # Rewire v; keep u.  Retry a few times to avoid self-loops and
            # duplicates; keep the original edge when the node saturates.
            for _ in range(8):
                w = int(rng.integers(0, num_nodes))
                candidate = (min(u, w), max(u, w))
                if w != u and candidate not in rewired and candidate not in edges:
                    key = candidate
                    break
        rewired.add(key)
    builder = GraphBuilder()
    builder.add_edges(np.asarray(sorted(rewired), dtype=np.int64))
    builder.touch_node(num_nodes - 1)
    return builder.build()


def random_regular_graph(
    num_nodes: int,
    degree: int,
    seed: "int | np.random.Generator | None" = None,
    max_attempts: int = 20,
) -> Graph:
    """Random ``degree``-regular simple graph via pairing with swap repair.

    ``num_nodes * degree`` must be even.  Stubs are paired uniformly; pairs
    forming self-loops or duplicate edges are then *repaired* by swapping
    one endpoint with a uniformly random other pair (which preserves the
    degree sequence).  Repair converges fast even where pure rejection is
    hopeless (e.g. 4-regular on 6 nodes); if a repair budget is exhausted
    the pairing is redrawn, and only after ``max_attempts`` redraws —
    essentially only for infeasible-in-practice dense cases — does the
    function give up.
    """
    if degree < 1:
        raise ParameterError("degree must be >= 1")
    if degree >= num_nodes:
        raise ParameterError("degree must be below num_nodes")
    if (num_nodes * degree) % 2:
        raise ParameterError("num_nodes * degree must be even")
    rng = resolve_rng(seed)
    stubs = np.repeat(np.arange(num_nodes, dtype=np.int64), degree)
    num_pairs = stubs.size // 2
    repair_rounds = 50 + 10 * num_pairs
    for _ in range(max_attempts):
        pairs = rng.permutation(stubs).reshape(num_pairs, 2)
        for _ in range(repair_rounds):
            bad = _conflicting_pairs(pairs, num_nodes)
            if not bad.size:
                lo = np.minimum(pairs[:, 0], pairs[:, 1])
                hi = np.maximum(pairs[:, 0], pairs[:, 1])
                builder = GraphBuilder()
                builder.add_edges(np.column_stack((lo, hi)))
                builder.touch_node(num_nodes - 1)
                return builder.build()
            i = int(bad[rng.integers(0, bad.size)])
            j = int(rng.integers(0, num_pairs))
            pairs[i, 1], pairs[j, 1] = pairs[j, 1], pairs[i, 1]
    raise ParameterError(
        f"failed to realize a {degree}-regular simple graph on {num_nodes} "
        f"nodes (degree too close to n?)"
    )


def _conflicting_pairs(pairs: np.ndarray, num_nodes: int) -> np.ndarray:
    """Indices of pairs that are self-loops or duplicate an earlier edge."""
    lo = np.minimum(pairs[:, 0], pairs[:, 1])
    hi = np.maximum(pairs[:, 0], pairs[:, 1])
    loops = lo == hi
    keys = lo * num_nodes + hi
    order = np.argsort(keys, kind="stable")
    dup_sorted = np.zeros(keys.size, dtype=bool)
    dup_sorted[1:] = keys[order][1:] == keys[order][:-1]
    duplicates = np.zeros(keys.size, dtype=bool)
    duplicates[order] = dup_sorted
    return np.flatnonzero(loops | duplicates)


def configuration_model_graph(
    degree_sequence: "list[int] | np.ndarray",
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Simple graph approximating a prescribed degree sequence.

    Pairs stubs uniformly, then *erases* self-loops and duplicate edges
    (the "erased configuration model"), so high-degree nodes may fall a few
    edges short of their prescribed degree — the standard tradeoff for
    guaranteeing simplicity.
    """
    degrees = np.asarray(degree_sequence, dtype=np.int64)
    if degrees.ndim != 1 or degrees.size == 0:
        raise ParameterError("degree_sequence must be a non-empty 1-D sequence")
    if (degrees < 0).any():
        raise ParameterError("degrees must be non-negative")
    if int(degrees.sum()) % 2:
        raise ParameterError("degree sequence must have even sum")
    if degrees.max(initial=0) >= degrees.size:
        raise ParameterError("max degree must be below the node count")
    rng = resolve_rng(seed)
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    perm = rng.permutation(stubs)
    src, dst = perm[0::2], perm[1::2]
    keep = src != dst
    lo = np.minimum(src[keep], dst[keep])
    hi = np.maximum(src[keep], dst[keep])
    builder = GraphBuilder()
    if lo.size:
        builder.add_edges(np.column_stack((lo, hi)))  # builder dedups
    builder.touch_node(degrees.size - 1)
    return builder.build()


def forest_fire_graph(
    num_nodes: int,
    forward_probability: float = 0.35,
    seed: "int | np.random.Generator | None" = None,
) -> Graph:
    """Forest-fire growth model (undirected variant).

    Each arriving node picks a uniform ambassador, links to it, then
    "burns" outward: from each newly burned node it links to a
    geometrically distributed number of that node's yet-unburned neighbors
    (mean ``p / (1 - p)``), recursively.  Produces heavy-tailed degrees and
    dense community-like pockets.
    """
    if num_nodes < 2:
        raise ParameterError("num_nodes must be >= 2")
    if not 0.0 <= forward_probability < 1.0:
        raise ParameterError("forward_probability must lie in [0, 1)")
    rng = resolve_rng(seed)
    adjacency: list[set[int]] = [set() for _ in range(num_nodes)]

    def link(u: int, v: int) -> None:
        adjacency[u].add(v)
        adjacency[v].add(u)

    link(0, 1)
    for new in range(2, num_nodes):
        ambassador = int(rng.integers(0, new))
        burned = {ambassador}
        frontier = [ambassador]
        link(new, ambassador)
        while frontier:
            current = frontier.pop()
            fresh = [v for v in adjacency[current] if v not in burned and v != new]
            if not fresh:
                continue
            burn_count = min(int(rng.geometric(1.0 - forward_probability)) - 1,
                             len(fresh))
            if burn_count <= 0:
                continue
            picks = rng.choice(len(fresh), size=burn_count, replace=False)
            for i in picks:
                v = fresh[int(i)]
                burned.add(v)
                frontier.append(v)
                link(new, v)
    edges = [
        (u, v) for u in range(num_nodes) for v in adjacency[u] if u < v
    ]
    return Graph.from_edges(edges, num_nodes=num_nodes)
