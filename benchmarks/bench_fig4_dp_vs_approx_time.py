"""Fig. 4: running time, DP-based vs approximate greedy (R = 250).

Paper shape: the DP algorithms are orders of magnitude slower than the
approximate ones (~200x in the paper's C++), and runtimes roughly double
from L=5 to L=10.
"""

from repro.experiments.figures import fig4


def test_fig4(benchmark, config, report):
    table = benchmark.pedantic(lambda: fig4(config), rounds=1, iterations=1)
    report(table, "fig4.txt")
    seconds = table.columns.index("seconds")
    for length in (5, 10):
        times = {
            row[1]: row[seconds] for row in table.filtered(L=length)
        }
        # The approximate greedy must beat the full-sweep DP clearly.
        assert times["ApproxF1"] < times["DPF1"] / 5
        assert times["ApproxF2"] < times["DPF2"] / 5
