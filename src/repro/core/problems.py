"""Problem statements (Section 2.1) and a high-level solver dispatcher.

:class:`Problem1` and :class:`Problem2` pin down an instance — graph, budget
``k``, walk length ``L`` — and :func:`solve` routes it to any of the
implemented algorithms by name, so applications and the experiment harness
share one entry point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.result import SelectionResult

__all__ = ["Problem1", "Problem2", "SOLVER_NAMES", "solve"]


@dataclass(frozen=True)
class _ProblemBase:
    """Shared instance data: the graph, the budget, the walk horizon."""

    graph: Graph
    k: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.k <= self.graph.num_nodes:
            raise ParameterError(
                f"k={self.k} must lie in [0, n={self.graph.num_nodes}]"
            )
        if self.length < 0:
            raise ParameterError("walk length L must be >= 0")


@dataclass(frozen=True)
class Problem1(_ProblemBase):
    """Minimize total generalized hitting time (maximize ``F1``), Eq. 6."""

    objective = "f1"


@dataclass(frozen=True)
class Problem2(_ProblemBase):
    """Maximize the expected number of dominated nodes (``F2``), Eq. 7."""

    objective = "f2"


#: Algorithms accepted by :func:`solve`.
SOLVER_NAMES = (
    "dp",          # DP-based greedy (DPF1 / DPF2)
    "sampling",    # greedy with Algorithm 2 marginal gains
    "approx",      # Algorithm 6, paper-faithful implementation
    "approx-fast", # Algorithm 6, vectorized engine (default)
    "degree",      # top-k degree baseline
    "dominate",    # classic dominating-set greedy baseline
    "random",      # uniform random baseline
)


def solve(
    problem: "Problem1 | Problem2",
    method: str = "approx-fast",
    **options: Any,
) -> SelectionResult:
    """Solve a random-walk domination instance with the chosen algorithm.

    ``options`` are forwarded to the underlying solver (``num_replicates``,
    ``seed``, ``lazy``, ...).  Baselines ignore the objective — they answer
    both problems the same way, as in the paper's comparison.
    """
    # Imported here to keep module import acyclic (solvers import problems'
    # siblings).
    from repro.core.approx_fast import approx_greedy_fast
    from repro.core.approx_greedy import approx_greedy
    from repro.core.baselines import (
        degree_baseline,
        dominate_baseline,
        random_baseline,
    )
    from repro.core.dp_greedy import dpf1, dpf2
    from repro.core.sampling_greedy import sampling_greedy_f1, sampling_greedy_f2

    objective = problem.objective
    graph, k, length = problem.graph, problem.k, problem.length
    if method == "dp":
        runner = dpf1 if objective == "f1" else dpf2
        return runner(graph, k, length, **options)
    if method == "sampling":
        runner = sampling_greedy_f1 if objective == "f1" else sampling_greedy_f2
        return runner(graph, k, length, **options)
    if method == "approx":
        return approx_greedy(graph, k, length, objective=objective, **options)
    if method == "approx-fast":
        return approx_greedy_fast(
            graph, k, length, objective=objective, **options
        )
    if method == "degree":
        return degree_baseline(graph, k, **options)
    if method == "dominate":
        return dominate_baseline(graph, k, **options)
    if method == "random":
        return random_baseline(graph, k, **options)
    raise ParameterError(f"unknown method {method!r}; choose from {SOLVER_NAMES}")
