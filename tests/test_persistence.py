"""Walk-index persistence: save/load round trips and corruption handling."""

import numpy as np
import pytest

from repro.core.approx_fast import approx_greedy_fast
from repro.errors import GraphFormatError
from repro.graphs.generators import power_law_graph, ring_graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import load_index, save_index


class TestRoundTrip:
    def test_arrays_identical(self, tmp_path):
        graph = power_law_graph(60, 180, seed=1)
        index = FlatWalkIndex.build(graph, 5, 8, seed=2)
        path = tmp_path / "walks.npz"
        save_index(index, path)
        back = load_index(path)
        np.testing.assert_array_equal(back.indptr, index.indptr)
        np.testing.assert_array_equal(back.state, index.state)
        np.testing.assert_array_equal(back.hop, index.hop)
        assert back.num_nodes == index.num_nodes
        assert back.length == index.length
        assert back.num_replicates == index.num_replicates

    def test_selection_identical_after_reload(self, tmp_path):
        """The point of persistence: same index -> same greedy answer."""
        graph = power_law_graph(80, 240, seed=3)
        index = FlatWalkIndex.build(graph, 4, 10, seed=4)
        path = tmp_path / "walks.npz"
        save_index(index, path)
        original = approx_greedy_fast(graph, 6, 4, index=index)
        reloaded = approx_greedy_fast(graph, 6, 4, index=load_index(path))
        assert original.selected == reloaded.selected

    def test_empty_index(self, tmp_path):
        """A graph of isolated nodes yields an index with zero entries."""
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder()
        builder.touch_node(4)
        index = FlatWalkIndex.build(builder.build(), 3, 2, seed=5)
        path = tmp_path / "empty.npz"
        save_index(index, path)
        back = load_index(path)
        assert back.total_entries == 0
        assert back.num_nodes == 5


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises((GraphFormatError, FileNotFoundError)):
            load_index(tmp_path / "nope.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(5))
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_wrong_version(self, tmp_path):
        graph = ring_graph(6)
        index = FlatWalkIndex.build(graph, 2, 2, seed=1)
        path = tmp_path / "v99.npz"
        np.savez(
            path,
            version=np.int64(99),
            header=np.asarray([6, 2, 2], dtype=np.int64),
            indptr=index.indptr,
            state=index.state,
            hop=index.hop,
        )
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_inconsistent_arrays(self, tmp_path):
        graph = ring_graph(6)
        index = FlatWalkIndex.build(graph, 2, 2, seed=1)
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            version=np.int64(1),
            header=np.asarray([6, 2, 2], dtype=np.int64),
            indptr=index.indptr,
            state=index.state[:-1],  # truncated
            hop=index.hop,
        )
        with pytest.raises(GraphFormatError):
            load_index(path)


class TestSuffixNormalization:
    """Suffixless paths round-trip (regression: ``save_index(idx,
    "myindex")`` wrote ``myindex.npz`` via numpy's silent suffix append,
    then ``load_index("myindex")`` failed on the literal name)."""

    def test_static_round_trip_without_suffix(self, tmp_path):
        graph = power_law_graph(40, 120, seed=6)
        index = FlatWalkIndex.build(graph, 3, 4, seed=7)
        written = save_index(index, tmp_path / "myindex")
        assert written == tmp_path / "myindex.npz"
        assert written.is_file()
        back = load_index(tmp_path / "myindex")
        np.testing.assert_array_equal(back.state, index.state)
        # The explicit suffixed spelling reaches the same archive.
        np.testing.assert_array_equal(
            load_index(tmp_path / "myindex.npz").state, index.state
        )

    def test_dynamic_round_trip_without_suffix(self, tmp_path):
        from repro.dynamic import DynamicWalkIndex
        from repro.walks.persistence import (
            load_dynamic_index,
            save_dynamic_index,
        )

        graph = power_law_graph(30, 90, seed=8)
        dyn = DynamicWalkIndex.build(graph, 3, 4, seed=9)
        written = save_dynamic_index(dyn, tmp_path / "snap")
        assert written == tmp_path / "snap.npz"
        back = load_dynamic_index(tmp_path / "snap", graph=graph)
        np.testing.assert_array_equal(back.walks, dyn.walks)

    def test_literal_suffixless_file_is_honored(self, tmp_path):
        """A file genuinely named without .npz loads as given — and an
        overwrite updates it in place rather than writing a shadowed
        .npz sibling that load would never see."""
        graph = power_law_graph(30, 90, seed=3)
        index = FlatWalkIndex.build(graph, 3, 4, seed=4)
        written = save_index(index, tmp_path / "real")
        written.rename(tmp_path / "real")  # strip the suffix on disk
        back = load_index(tmp_path / "real")
        np.testing.assert_array_equal(back.state, index.state)
        replacement = FlatWalkIndex.build(graph, 3, 4, seed=11)
        rewritten = save_index(replacement, tmp_path / "real")
        assert rewritten == tmp_path / "real"
        assert [p.name for p in tmp_path.iterdir()] == ["real"]
        np.testing.assert_array_equal(
            load_index(tmp_path / "real").state, replacement.state
        )

    def test_provenance_accepts_suffixless(self, tmp_path):
        from repro.walks.persistence import index_provenance

        graph = power_law_graph(30, 90, seed=3)
        index = FlatWalkIndex.build(graph, 3, 4, seed=4)
        save_index(index, tmp_path / "prov", graph=graph, engine="csr")
        assert index_provenance(tmp_path / "prov")["engine"] == "csr"


class TestAtomicSave:
    """A crash mid-save must leave the previous good archive intact
    (regression: saves wrote straight to the destination, so an
    interrupted write destroyed both the old and the new archive)."""

    def _boom(self, monkeypatch):
        def failing_savez(file, **payload):
            target = file if isinstance(file, str) else str(file)
            with open(target, "wb") as handle:
                handle.write(b"half-written garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", failing_savez)

    def test_interrupted_static_save_keeps_old_archive(
        self, tmp_path, monkeypatch
    ):
        graph = power_law_graph(40, 120, seed=1)
        index = FlatWalkIndex.build(graph, 3, 4, seed=2)
        path = save_index(index, tmp_path / "walks.npz")
        self._boom(monkeypatch)
        with pytest.raises(OSError):
            save_index(
                FlatWalkIndex.build(graph, 3, 4, seed=5), path
            )
        monkeypatch.undo()
        back = load_index(path)
        np.testing.assert_array_equal(back.state, index.state)
        assert [p.name for p in tmp_path.iterdir()] == ["walks.npz"]

    def test_interrupted_dynamic_save_keeps_old_archive(
        self, tmp_path, monkeypatch
    ):
        from repro.dynamic import DynamicWalkIndex
        from repro.walks.persistence import (
            load_dynamic_index,
            save_dynamic_index,
        )

        graph = power_law_graph(30, 90, seed=2)
        dyn = DynamicWalkIndex.build(graph, 3, 4, seed=3)
        path = save_dynamic_index(dyn, tmp_path / "snap.npz")
        self._boom(monkeypatch)
        with pytest.raises(OSError):
            save_dynamic_index(
                DynamicWalkIndex.build(graph, 3, 4, seed=8), path
            )
        monkeypatch.undo()
        back = load_dynamic_index(path, graph=graph)
        np.testing.assert_array_equal(back.walks, dyn.walks)
        assert [p.name for p in tmp_path.iterdir()] == ["snap.npz"]

    def test_saves_do_not_inherit_mkstemp_permissions(self, tmp_path):
        """The temp-file dance must not leave archives 0600 (mkstemp's
        default) — a saver and a reader are different processes in the
        serving deployment.  Fresh saves honor the umask; overwrites
        keep the destination's existing mode."""
        import os

        graph = power_law_graph(30, 90, seed=1)
        index = FlatWalkIndex.build(graph, 3, 4, seed=2)
        path = save_index(index, tmp_path / "perms.npz")
        umask = os.umask(0)
        os.umask(umask)
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)
        os.chmod(path, 0o604)
        save_index(index, path)
        assert (path.stat().st_mode & 0o777) == 0o604
