"""Quickstart: select and evaluate random-walk domination targets.

Builds a social network with community structure, solves both problems of
the paper with the scalable approximate greedy (Algorithm 6), compares
against the Degree baseline, and prints the paper's two quality metrics.
The community structure is the point: the highest-degree nodes cluster in a
few communities, so `Degree` strands whole communities, while the greedy
algorithms spread targets to cover every one.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import repro
from repro.graphs.generators import planted_partition_graph

CLUSTERS = 8
CLUSTER_SIZE = 150


def main() -> None:
    # 8 communities of 150 users; dense inside, sparse across.
    graph = planted_partition_graph(
        CLUSTERS, CLUSTER_SIZE, intra_probability=0.05,
        inter_probability=0.001, seed=5,
    )
    print(f"graph: {graph}, {CLUSTERS} communities of {CLUSTER_SIZE}")

    k = 16       # budget: how many users we can target
    length = 6   # social-browsing horizon (hops per random walk)

    # Problem 1: make everyone reach a target quickly (min hitting time).
    p1 = repro.approx_greedy_fast(
        graph, k, length, num_replicates=100, objective="f1", seed=1
    )
    # Problem 2: maximize how many users reach any target at all.
    p2 = repro.approx_greedy_fast(
        graph, k, length, num_replicates=100, objective="f2", seed=1
    )
    baseline = repro.degree_baseline(graph, k)

    print(f"\n{'algorithm':<10} {'AHT (lower=better)':>19} "
          f"{'EHN (higher=better)':>20} {'communities covered':>20}")
    for result in (p1, p2, baseline):
        aht = repro.average_hitting_time(graph, result.selected, length)
        ehn = repro.expected_hit_nodes(graph, result.selected, length)
        covered = len({v // CLUSTER_SIZE for v in result.selected})
        print(f"{result.algorithm:<10} {aht:>19.4f} {ehn:>20.1f} "
              f"{covered:>17}/{CLUSTERS}")

    print(f"\nApproxF1 selected (first 10): {p1.selected[:10]}")
    print(f"ApproxF1 took {p1.elapsed_seconds:.2f}s, "
          f"{p1.num_gain_evaluations} gain evaluations")


if __name__ == "__main__":
    main()
