"""Query-serving subsystem: the online read path over walk indexes.

The paper's three application scenarios — P2P keyword search, ad
placement, social-network influence — are all *online query workloads*:
many concurrent users asking selection and coverage questions against a
precomputed walk index.  This package is that read path (DESIGN.md §10,
§12):

* :class:`~repro.serve.snapshot.IndexSnapshot` — an immutable
  ``(graph, index, epoch, fingerprint)`` unit, loaded from persistence
  (provenance-checked) or captured from a maintained
  :class:`~repro.dynamic.index.DynamicWalkIndex`.
* :class:`~repro.serve.service.DominationService` — thread-safe typed
  queries (``select`` / ``metrics`` / ``coverage`` / ``min_targets``)
  with request micro-batching, an epoch-keyed LRU result cache, and an
  atomic swap-on-churn publish path; every answer bit-identical to the
  direct solver call on the same snapshot.
* :mod:`~repro.serve.schemas` — the typed JSON wire schemas
  (dataclass-validated requests with field-context errors, exact
  encode/decode round-trip).
* :class:`~repro.serve.http.DominationHttpServer` — the asyncio
  HTTP/1.1 front end (stdlib-only) with health/readiness endpoints,
  per-endpoint latency counters, and bounded-in-flight backpressure.
* :mod:`~repro.serve.loadgen` — workload parsing and the closed-loop
  load generator (in-process or over HTTP) behind ``repro serve`` and
  ``benchmarks/bench_serving.py`` / ``benchmarks/bench_http_serving.py``.
"""

from repro.serve.snapshot import IndexSnapshot
from repro.serve.service import (
    QUERY_KINDS,
    DominationService,
    ServiceStats,
)
from repro.serve.schemas import (
    REQUEST_KINDS,
    CoverageRequest,
    MetricsRequest,
    MinTargetsRequest,
    SelectRequest,
    decode_request,
    encode_request,
    encode_response,
)
from repro.serve.http import (
    DominationHttpServer,
    EndpointStats,
    HttpServerHandle,
    start_http_server,
)
from repro.serve.loadgen import (
    LoadReport,
    WorkloadQuery,
    parse_workload,
    run_load,
    sample_percentile,
)

__all__ = [
    "IndexSnapshot",
    "DominationService",
    "ServiceStats",
    "QUERY_KINDS",
    "REQUEST_KINDS",
    "SelectRequest",
    "MetricsRequest",
    "CoverageRequest",
    "MinTargetsRequest",
    "decode_request",
    "encode_request",
    "encode_response",
    "DominationHttpServer",
    "EndpointStats",
    "HttpServerHandle",
    "start_http_server",
    "LoadReport",
    "WorkloadQuery",
    "parse_workload",
    "run_load",
    "sample_percentile",
]
