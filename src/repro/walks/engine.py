"""L-length random-walk engine.

The paper's random-walk model (Section 2): from node ``u`` the walk moves to
a uniformly random neighbor, for at most ``L`` hops; nodes may repeat.  This
module provides

* :func:`random_walk` — one walk, plain Python, used by the paper-faithful
  algorithm implementations and by tests;
* :func:`batch_walks` — all positions of many walks as one ``(B, L+1)``
  matrix, a few numpy gathers per hop, used by the scalable engine;
* first-hit helpers implementing the truncated hitting variable
  ``T^L_uS = min(min{t : Z_t ∈ S}, L)`` of Eq. (3).

These kernels are also the ``"numpy"`` backend — the default and the
reference semantics — of the pluggable walk-engine registry in
:mod:`repro.walks.backends` (DESIGN.md §3), which alternative execution
strategies must match bit-for-bit under a shared seed.

Dangling nodes (degree 0) cannot move; their walks stay in place, which
realizes the package-wide convention ``h^L_uS = L`` and ``p^L_uS = 0`` for a
dangling ``u ∉ S`` (DESIGN.md §5).
"""

from __future__ import annotations

from typing import Collection, Sequence

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.rng import resolve_rng

__all__ = [
    "random_walk",
    "batch_walks",
    "first_hit_time",
    "batch_first_hits",
    "walk_is_valid",
]


def _check_length(length: int) -> None:
    if length < 0:
        raise ParameterError("walk length L must be >= 0")


def random_walk(
    graph: Graph,
    start: int,
    length: int,
    seed: "int | np.random.Generator | None" = None,
) -> list[int]:
    """One L-length random walk as a node list of ``length + 1`` positions.

    ``walk[t]`` is the position ``Z_t`` after ``t`` hops; ``walk[0] ==
    start``.  A dangling position repeats itself for the remaining hops.
    """
    _check_length(length)
    if not 0 <= start < graph.num_nodes:
        raise ParameterError(f"start node {start} out of range")
    rng = resolve_rng(seed)
    walk = [start]
    current = start
    for _ in range(length):
        neigh = graph.neighbors(current)
        if neigh.size:
            current = int(neigh[rng.integers(0, neigh.size)])
        walk.append(current)
    return walk


def batch_walks(
    graph: Graph,
    starts: "Sequence[int] | np.ndarray",
    length: int,
    seed: "int | np.random.Generator | None" = None,
) -> np.ndarray:
    """Positions of ``len(starts)`` independent walks, shape ``(B, L+1)``.

    Column ``t`` holds ``Z_t`` for every walk.  Entire columns are advanced
    at once: one uniform draw per walk per hop plus one CSR gather.
    """
    _check_length(length)
    starts = np.asarray(starts, dtype=np.int64)
    if starts.size and (starts.min() < 0 or starts.max() >= graph.num_nodes):
        raise ParameterError("start nodes out of range")
    rng = resolve_rng(seed)
    batch = starts.size
    walks = np.empty((batch, length + 1), dtype=np.int32)
    walks[:, 0] = starts
    if length == 0 or batch == 0:
        return walks
    indptr = graph.indptr
    indices = graph.indices
    degrees = graph.degrees
    current = starts.copy()
    for t in range(1, length + 1):
        deg = degrees[current]
        movable = deg > 0
        # random offset in [0, deg) per movable walk
        offsets = (rng.random(batch) * deg).astype(np.int64)
        nxt = current.copy()
        rows = current[movable]
        nxt[movable] = indices[indptr[rows] + offsets[movable]]
        walks[:, t] = nxt
        current = nxt
    return walks


def first_hit_time(walk: Sequence[int], targets: Collection[int]) -> int | None:
    """First index ``t`` with ``walk[t] in targets``; ``None`` if never.

    Matches Eq. (1)/(3) *before* truncation: the caller decides whether a
    miss counts as ``L`` (hitting time) or as failure (hit probability).
    """
    target_set = targets if isinstance(targets, (set, frozenset)) else set(targets)
    for t, node in enumerate(walk):
        if node in target_set:
            return t
    return None


def batch_first_hits(walks: np.ndarray, target_mask: np.ndarray) -> np.ndarray:
    """Vectorized first-hit hop per walk row; misses are ``-1``.

    ``target_mask`` is a boolean array over nodes.  The result ``t[b]`` is
    the smallest column index whose node is a target, or ``-1``.
    """
    if walks.ndim != 2:
        raise ParameterError("walks must be a (B, L+1) matrix")
    hits = target_mask[walks]
    any_hit = hits.any(axis=1)
    first = hits.argmax(axis=1).astype(np.int64)
    first[~any_hit] = -1
    return first


def walk_is_valid(graph: Graph, walk: Sequence[int]) -> bool:
    """Whether consecutive walk positions are joined by edges (or a dangling
    node legitimately repeats)."""
    if len(walk) == 0:
        return False
    for u, v in zip(walk, walk[1:]):
        if u == v and graph.degree(int(u)) == 0:
            continue
        if not graph.has_edge(int(u), int(v)):
            return False
    return True
