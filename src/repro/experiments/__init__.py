"""Experiment harness reproducing every table and figure of the paper."""

from repro.experiments.config import HarnessConfig, default_config
from repro.experiments.figures import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig6_fig7,
    fig7,
    fig8,
    fig9,
    fig10,
    table2,
)
from repro.experiments.reporting import ExperimentTable, format_table
from repro.experiments.runner import (
    ALGORITHMS,
    QualityPoint,
    quality_series,
    run_algorithm,
)

__all__ = [
    "HarnessConfig",
    "default_config",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig6_fig7",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "table2",
    "ExperimentTable",
    "format_table",
    "ALGORITHMS",
    "QualityPoint",
    "quality_series",
    "run_algorithm",
]
