"""DP-based greedy algorithms — ``DPF1`` and ``DPF2`` of the paper.

These are Algorithm 1 with *exact* marginal gains: every evaluation runs the
Theorem 2.2 (respectively 2.3) dynamic program.  The paper's Section 4 uses
them as the quality reference on the small synthetic graph (Figs. 2-4); they
carry the full ``1 - 1/e`` guarantee but an evaluation cost that confines
them to small graphs.

Both default to CELF lazy evaluation (the speedup the paper points to via
[19]); pass ``lazy=False`` for the verbatim full-sweep Algorithm 1.
"""

from __future__ import annotations

from repro.graphs.adjacency import Graph
from repro.core.greedy import greedy_select
from repro.core.objectives import F1Objective, F2Objective
from repro.core.result import SelectionResult

__all__ = ["dpf1", "dpf2"]


def dpf1(graph: Graph, k: int, length: int, lazy: bool = True) -> SelectionResult:
    """Greedy for Problem 1 with exact DP marginal gains (``DPF1``)."""
    objective = F1Objective(graph, length)
    result = greedy_select(objective, k, lazy=lazy, algorithm_name="DPF1")
    result.params.update({"L": length, "method": "dp", "objective": "f1"})
    return result


def dpf2(graph: Graph, k: int, length: int, lazy: bool = True) -> SelectionResult:
    """Greedy for Problem 2 with exact DP marginal gains (``DPF2``)."""
    objective = F2Objective(graph, length)
    result = greedy_select(objective, k, lazy=lazy, algorithm_name="DPF2")
    result.params.update({"L": length, "method": "dp", "objective": "f2"})
    return result
