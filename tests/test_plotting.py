"""ASCII plotting for experiment series."""

import pytest

from repro.errors import ParameterError
from repro.experiments.plotting import ascii_bars, ascii_plot, plot_table
from repro.experiments.reporting import ExperimentTable


class TestAsciiPlot:
    def test_single_series_renders(self):
        text = ascii_plot({"a": [(0, 0), (1, 1), (2, 4)]}, title="squares")
        assert "== squares ==" in text
        assert "legend: o=a" in text
        assert text.count("o") >= 3

    def test_marker_positions_monotone_series(self):
        """An increasing series puts its first point bottom-left and its
        last point top-right."""
        text = ascii_plot({"up": [(0, 0), (10, 10)]}, width=20, height=5)
        rows = [line for line in text.splitlines() if "|" in line]
        first_row = rows[0]  # top of the plot = max y
        last_row = rows[-1]  # bottom = min y
        assert "o" in first_row and first_row.rindex("o") > 15
        assert "o" in last_row and last_row.index("o") <= first_row.index("|") + 1

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot(
            {"a": [(0, 1), (1, 1)], "b": [(0, 2), (1, 2)]},
        )
        assert "o=a" in text
        assert "x=b" in text
        assert "x" in text.split("legend")[0]

    def test_axis_labels_present(self):
        text = ascii_plot(
            {"s": [(1, 2), (3, 4)]}, x_label="k", y_label="AHT"
        )
        assert "k ->" in text
        assert "AHT ^" in text

    def test_degenerate_single_point(self):
        text = ascii_plot({"p": [(5, 5)]})
        assert "o" in text

    def test_horizontal_line(self):
        text = ascii_plot({"flat": [(0, 3), (1, 3), (2, 3)]})
        plot_area = text.split("legend")[0]
        assert plot_area.count("o") == 3

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            ascii_plot({})
        with pytest.raises(ParameterError):
            ascii_plot({"a": []})

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ParameterError):
            ascii_plot({"a": [(0, 0)]}, width=4)
        with pytest.raises(ParameterError):
            ascii_plot({"a": [(0, 0)]}, height=2)

    def test_rejects_too_many_series(self):
        series = {f"s{i}": [(0, i)] for i in range(9)}
        with pytest.raises(ParameterError):
            ascii_plot(series)

    def test_range_endpoints_labeled(self):
        text = ascii_plot({"a": [(2, 10), (8, 50)]})
        assert "50" in text
        assert "10" in text
        assert "2" in text
        assert "8" in text


class TestAsciiBars:
    def test_proportional_bars(self):
        text = ascii_bars({"fast": 1.0, "slow": 4.0}, width=40)
        lines = text.splitlines()
        fast = next(line for line in lines if line.startswith("fast"))
        slow = next(line for line in lines if line.startswith("slow"))
        assert slow.count("#") == 40
        assert fast.count("#") == 10

    def test_unit_suffix(self):
        text = ascii_bars({"a": 2.0}, unit="s")
        assert "2 s" in text

    def test_title(self):
        text = ascii_bars({"a": 1.0}, title="runtimes")
        assert text.startswith("== runtimes ==")

    def test_zero_values_ok(self):
        text = ascii_bars({"a": 0.0, "b": 0.0})
        assert "#" not in text

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            ascii_bars({})

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            ascii_bars({"a": -1.0})

    def test_rejects_narrow(self):
        with pytest.raises(ParameterError):
            ascii_bars({"a": 1.0}, width=4)


class TestPlotTable:
    def _table(self):
        table = ExperimentTable(
            title="Fig X", columns=("k", "algorithm", "aht")
        )
        table.add_row(20, "Degree", 5.8)
        table.add_row(20, "ApproxF1", 5.2)
        table.add_row(40, "Degree", 5.6)
        table.add_row(40, "ApproxF1", 5.0)
        return table

    def test_groups_become_series(self):
        text = plot_table(self._table(), x="k", y="aht")
        assert "o=Degree" in text
        assert "x=ApproxF1" in text
        assert "== Fig X ==" in text

    def test_missing_column_rejected(self):
        with pytest.raises(ParameterError):
            plot_table(self._table(), x="k", y="missing")

    def test_non_numeric_rejected(self):
        table = ExperimentTable(title="t", columns=("k", "algorithm", "aht"))
        table.add_row("low", "Degree", 5.0)
        with pytest.raises(ParameterError):
            plot_table(table, x="k", y="aht")

    def test_custom_group_column(self):
        table = ExperimentTable(title="t", columns=("x", "y", "dataset"))
        table.add_row(1, 2.0, "CAGrQc")
        table.add_row(2, 3.0, "CAGrQc")
        text = plot_table(table, x="x", y="y", group_by="dataset")
        assert "o=CAGrQc" in text
