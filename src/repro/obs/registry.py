"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the storage layer of :mod:`repro.obs` (DESIGN.md §14).
Three metric families, all dependency-free and safe under free-threaded
access:

* :class:`Counter` — monotonically increasing float (``inc``).
* :class:`Gauge` — instantaneous value (``set``/``inc``/``dec``).
* :class:`Histogram` — fixed upper-bound buckets, cumulative on export
  (Prometheus ``le`` semantics), plus exact ``sum``/``count``.

Each metric instance owns one :class:`threading.Lock`; the registry's own
lock only guards the name table, so contention between distinct metrics is
zero and contention on one metric is a single uncontended-in-the-common-case
lock acquire (no busy retry loops, no lost updates — asserted by the
hypothesis suite in ``tests/test_obs.py``).

Cross-process story: workers cannot share a registry, so a worker builds a
private one, records into it, and ships :meth:`MetricsRegistry.snapshot`
(as a plain dict — spawn-picklable, JSON-safe) back with its payload; the
parent calls :meth:`MetricsRegistry.absorb`.  Counters and histograms add,
gauges last-write-win.  The multiproc walk engine threads this through its
existing record-streaming path (``walks/parallel.py``).

:class:`NullRegistry` is the disabled-mode stand-in: every accessor returns
a shared no-op metric, so instrumented code pays one attribute call and a
no-op method invocation when telemetry is off.
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass, field

from repro.errors import ParameterError

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramState",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NullRegistry",
    "NULL_REGISTRY",
]

# Seconds-scale latency buckets (upper bounds); +Inf is implicit.
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Power-of-two count buckets for size-like observations (batch occupancy,
# resampled rows, ...); +Inf is implicit.
COUNT_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0,
    1024.0, 4096.0, 16384.0, 65536.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Metric identity inside a snapshot: ``(name, ((label, value), ...))``.
Key = "tuple[str, tuple[tuple[str, str], ...]]"


def _label_key(labels: "dict[str, str] | None") -> tuple:
    if not labels:
        return ()
    items = []
    for name in sorted(labels):
        if not _LABEL_RE.match(name):
            raise ParameterError(f"invalid metric label name {name!r}")
        items.append((name, str(labels[name])))
    return tuple(items)


class Counter:
    """Monotonic counter.  ``inc`` only; negative increments raise."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError("counter increments must be >= 0")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Instantaneous value; ``set``/``inc``/``dec``."""

    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


@dataclass(frozen=True)
class HistogramState:
    """Immutable histogram snapshot: per-bucket counts are *non-cumulative*
    here (bucket ``i`` counts observations in ``(bounds[i-1], bounds[i]]``;
    the final slot is the +Inf overflow); exposition cumulates them."""

    bounds: tuple
    counts: tuple
    sum: float
    count: int

    def merged(self, other: "HistogramState") -> "HistogramState":
        if self.bounds != other.bounds:
            raise ParameterError(
                "cannot merge histograms with different buckets"
            )
        return HistogramState(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            sum=self.sum + other.sum,
            count=self.count + other.count,
        )


class Histogram:
    """Fixed-bucket histogram of float observations."""

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets=DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b >= c for b, c in zip(bounds, bounds[1:])
        ):
            raise ParameterError(
                "histogram buckets must be a non-empty increasing sequence"
            )
        self._lock = threading.Lock()
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot: +Inf overflow
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        slot = len(self._bounds)
        for i, bound in enumerate(self._bounds):
            if value <= bound:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1

    @property
    def bounds(self) -> tuple:
        return self._bounds

    def state(self) -> HistogramState:
        with self._lock:
            return HistogramState(
                bounds=self._bounds,
                counts=tuple(self._counts),
                sum=self._sum,
                count=self._count,
            )


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of a registry — plain data, mergeable.

    Keys are ``(name, ((label, value), ...))`` tuples; :meth:`to_dict` /
    :meth:`from_dict` provide a JSON-safe spelling for the multiproc
    record-streaming path and for on-disk dumps.
    """

    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)
    help: dict = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot with ``other`` folded in (counters/histograms
        add, gauges last-write-win)."""
        out = MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms=dict(self.histograms),
            help={**self.help, **other.help},
        )
        for key, value in other.counters.items():
            out.counters[key] = out.counters.get(key, 0.0) + value
        for key, value in other.gauges.items():
            out.gauges[key] = value
        for key, state in other.histograms.items():
            prior = out.histograms.get(key)
            out.histograms[key] = state if prior is None else prior.merged(state)
        return out

    @classmethod
    def merge_all(cls, snapshots) -> "MetricsSnapshot":
        out = cls()
        for snap in snapshots:
            out = out.merge(snap)
        return out

    # -- JSON-safe spelling -------------------------------------------
    def to_dict(self) -> dict:
        def encode(key):
            name, labels = key
            return [name, [list(pair) for pair in labels]]

        return {
            "counters": [
                [encode(k), v] for k, v in sorted(self.counters.items())
            ],
            "gauges": [
                [encode(k), v] for k, v in sorted(self.gauges.items())
            ],
            "histograms": [
                [
                    encode(k),
                    {
                        "bounds": list(s.bounds),
                        "counts": list(s.counts),
                        "sum": s.sum,
                        "count": s.count,
                    },
                ]
                for k, s in sorted(self.histograms.items())
            ],
            "help": dict(self.help),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        def decode(raw):
            name, labels = raw
            return (str(name), tuple((str(k), str(v)) for k, v in labels))

        snap = cls(help={str(k): str(v) for k, v in payload.get("help", {}).items()})
        for raw, value in payload.get("counters", []):
            snap.counters[decode(raw)] = float(value)
        for raw, value in payload.get("gauges", []):
            snap.gauges[decode(raw)] = float(value)
        for raw, state in payload.get("histograms", []):
            snap.histograms[decode(raw)] = HistogramState(
                bounds=tuple(float(b) for b in state["bounds"]),
                counts=tuple(int(c) for c in state["counts"]),
                sum=float(state["sum"]),
                count=int(state["count"]),
            )
        return snap


class MetricsRegistry:
    """Named, labelled metrics with per-metric locking (module docstring)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}
        self._help: dict = {}

    # -- accessors (create on first use) ------------------------------
    def _get(self, table, name, labels, factory, help):
        if not _NAME_RE.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        key = (name, _label_key(labels))
        with self._lock:
            metric = table.get(key)
            if metric is None:
                metric = table[key] = factory()
                if help and name not in self._help:
                    self._help[name] = help
            return metric

    def counter(
        self, name: str, labels: "dict | None" = None, help: str = ""
    ) -> Counter:
        return self._get(self._counters, name, labels, Counter, help)

    def gauge(
        self, name: str, labels: "dict | None" = None, help: str = ""
    ) -> Gauge:
        return self._get(self._gauges, name, labels, Gauge, help)

    def histogram(
        self,
        name: str,
        labels: "dict | None" = None,
        buckets=DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        return self._get(
            self._histograms, name, labels, lambda: Histogram(buckets), help
        )

    # -- export / merge ------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            help = dict(self._help)
        return MetricsSnapshot(
            counters={k: c.value for k, c in counters.items()},
            gauges={k: g.value for k, g in gauges.items()},
            histograms={k: h.state() for k, h in histograms.items()},
            help=help,
        )

    def absorb(self, snapshot: "MetricsSnapshot | dict") -> None:
        """Fold a (possibly remote) snapshot into the live metrics."""
        if isinstance(snapshot, dict):
            snapshot = MetricsSnapshot.from_dict(snapshot)
        for (name, labels), value in snapshot.counters.items():
            self.counter(
                name, dict(labels), help=snapshot.help.get(name, "")
            ).inc(value)
        for (name, labels), value in snapshot.gauges.items():
            self.gauge(
                name, dict(labels), help=snapshot.help.get(name, "")
            ).set(value)
        for (name, labels), state in snapshot.histograms.items():
            hist = self.histogram(
                name,
                dict(labels),
                buckets=state.bounds,
                help=snapshot.help.get(name, ""),
            )
            if hist.bounds != state.bounds:
                raise ParameterError(
                    f"histogram {name!r} bucket mismatch on absorb"
                )
            with hist._lock:
                for i, count in enumerate(state.counts):
                    hist._counts[i] += count
                hist._sum += state.sum
                hist._count += state.count

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._help.clear()


class _NullMetric:
    """Shared no-op stand-in for every metric type when disabled."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0


_NULL_METRIC = _NullMetric()


class NullRegistry(MetricsRegistry):
    """Disabled-mode registry: accessors return a shared no-op metric,
    snapshots are empty, absorb drops its input."""

    def counter(self, name, labels=None, help=""):
        return _NULL_METRIC

    def gauge(self, name, labels=None, help=""):
        return _NULL_METRIC

    def histogram(self, name, labels=None, buckets=DEFAULT_LATENCY_BUCKETS, help=""):
        return _NULL_METRIC

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def absorb(self, snapshot) -> None:
        pass


NULL_REGISTRY = NullRegistry()
