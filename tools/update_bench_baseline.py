#!/usr/bin/env python
"""Regenerate ``benchmarks/baselines.json`` from a local benchmark run.

Runs the gated benchmark suites (``BENCH_FILES`` below) with ``--json``,
then rewrites the committed
baseline file from the fresh measurements (documented in DESIGN.md §8).
Run it on a quiet machine after a deliberate performance change, review
the diff, and commit the result::

    python tools/update_bench_baseline.py            # full run
    python tools/update_bench_baseline.py --merge    # keep stale keys too

By default the baseline is replaced wholesale so deleted benchmarks do not
leave ghost keys behind; ``--merge`` updates in place instead.  Timing
assertions inside the benches are demoted (``--no-timing-gate``) because a
baseline refresh must not depend on the previous baseline's claims —
parity assertions still fail the run, and a failed run never touches the
baseline file.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / "benchmarks" / "baselines.json"
BENCH_FILES = [
    "benchmarks/bench_micro_kernels.py",
    "benchmarks/bench_coverage_kernel.py",
    "benchmarks/bench_dynamic_updates.py",
    "benchmarks/bench_serving.py",
    "benchmarks/bench_http_serving.py",
    "benchmarks/bench_multiproc.py",
    "benchmarks/bench_index_memory.py",
    "benchmarks/bench_oocore_build.py",
    "benchmarks/bench_row_compression.py",
    "benchmarks/bench_observability.py",
]


def run_benches(report_path: Path) -> None:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    command = [
        sys.executable, "-m", "pytest", *BENCH_FILES,
        "-q", "--no-timing-gate", "--json", str(report_path),
    ]
    print("running:", " ".join(command))
    result = subprocess.run(command, cwd=REPO_ROOT, env=env)
    if result.returncode != 0:
        raise SystemExit(
            f"benchmark run failed (exit {result.returncode}); "
            "baseline left untouched"
        )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--merge", action="store_true",
        help="merge into the existing baseline instead of replacing it",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(dir=REPO_ROOT / "benchmarks") as tmp:
        report_path = Path(tmp) / "bench_report.json"
        run_benches(report_path)
        report = json.loads(report_path.read_text(encoding="utf-8"))

    measurements = report["measurements"]
    if args.merge and BASELINE.is_file():
        merged = json.loads(BASELINE.read_text(encoding="utf-8"))
        merged["measurements"].update(measurements)
        merged["platform"] = report["platform"]
        merged["python"] = report["python"]
        payload = merged
    else:
        payload = {
            "schema": 1,
            "platform": report["platform"],
            "python": report["python"],
            "measurements": measurements,
        }
    BASELINE.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {len(measurements)} measurements to {BASELINE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
