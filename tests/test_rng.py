"""Tests for the RNG discipline."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.walks.rng import resolve_rng, spawn_children


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = resolve_rng(42).random(5)
        b = resolve_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_numpy_integer_accepted(self):
        assert isinstance(resolve_rng(np.int64(7)), np.random.Generator)

    def test_generator_passed_through(self):
        gen = np.random.default_rng(1)
        assert resolve_rng(gen) is gen

    def test_negative_seed_rejected(self):
        with pytest.raises(ParameterError):
            resolve_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(ParameterError):
            resolve_rng("seed")


class TestSpawnChildren:
    def test_count(self):
        children = spawn_children(7, 4)
        assert len(children) == 4

    def test_children_independent_streams(self):
        a, b = spawn_children(7, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_reproducible(self):
        a1, _ = spawn_children(7, 2)
        a2, _ = spawn_children(7, 2)
        assert np.array_equal(a1.random(10), a2.random(10))

    def test_zero_children(self):
        assert spawn_children(1, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ParameterError):
            spawn_children(1, -1)
