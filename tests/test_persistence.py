"""Walk-index persistence: save/load round trips and corruption handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx_fast import approx_greedy_fast
from repro.core.coverage_kernel import GAIN_BACKENDS
from repro.errors import GraphFormatError, ParameterError
from repro.graphs.generators import power_law_graph, ring_graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import (
    index_provenance,
    load_index,
    save_index,
)
from repro.walks.storage import INDEX_FORMATS


class TestRoundTrip:
    def test_arrays_identical(self, tmp_path):
        graph = power_law_graph(60, 180, seed=1)
        index = FlatWalkIndex.build(graph, 5, 8, seed=2)
        path = tmp_path / "walks.npz"
        save_index(index, path)
        back = load_index(path)
        np.testing.assert_array_equal(back.indptr, index.indptr)
        np.testing.assert_array_equal(back.state, index.state)
        np.testing.assert_array_equal(back.hop, index.hop)
        assert back.num_nodes == index.num_nodes
        assert back.length == index.length
        assert back.num_replicates == index.num_replicates

    def test_selection_identical_after_reload(self, tmp_path):
        """The point of persistence: same index -> same greedy answer."""
        graph = power_law_graph(80, 240, seed=3)
        index = FlatWalkIndex.build(graph, 4, 10, seed=4)
        path = tmp_path / "walks.npz"
        save_index(index, path)
        original = approx_greedy_fast(graph, 6, 4, index=index)
        reloaded = approx_greedy_fast(graph, 6, 4, index=load_index(path))
        assert original.selected == reloaded.selected

    def test_empty_index(self, tmp_path):
        """A graph of isolated nodes yields an index with zero entries."""
        from repro.graphs.builder import GraphBuilder

        builder = GraphBuilder()
        builder.touch_node(4)
        index = FlatWalkIndex.build(builder.build(), 3, 2, seed=5)
        path = tmp_path / "empty.npz"
        save_index(index, path)
        back = load_index(path)
        assert back.total_entries == 0
        assert back.num_nodes == 5


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises((GraphFormatError, FileNotFoundError)):
            load_index(tmp_path / "nope.npz")

    def test_not_an_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(5))
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_wrong_version(self, tmp_path):
        graph = ring_graph(6)
        index = FlatWalkIndex.build(graph, 2, 2, seed=1)
        path = tmp_path / "v99.npz"
        np.savez(
            path,
            version=np.int64(99),
            header=np.asarray([6, 2, 2], dtype=np.int64),
            indptr=index.indptr,
            state=index.state,
            hop=index.hop,
        )
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_inconsistent_arrays(self, tmp_path):
        graph = ring_graph(6)
        index = FlatWalkIndex.build(graph, 2, 2, seed=1)
        path = tmp_path / "bad.npz"
        np.savez(
            path,
            version=np.int64(1),
            header=np.asarray([6, 2, 2], dtype=np.int64),
            indptr=index.indptr,
            state=index.state[:-1],  # truncated
            hop=index.hop,
        )
        with pytest.raises(GraphFormatError):
            load_index(path)


class TestSuffixNormalization:
    """Suffixless paths round-trip (regression: ``save_index(idx,
    "myindex")`` wrote ``myindex.npz`` via numpy's silent suffix append,
    then ``load_index("myindex")`` failed on the literal name)."""

    def test_static_round_trip_without_suffix(self, tmp_path):
        graph = power_law_graph(40, 120, seed=6)
        index = FlatWalkIndex.build(graph, 3, 4, seed=7)
        written = save_index(index, tmp_path / "myindex")
        assert written == tmp_path / "myindex.npz"
        assert written.is_file()
        back = load_index(tmp_path / "myindex")
        np.testing.assert_array_equal(back.state, index.state)
        # The explicit suffixed spelling reaches the same archive.
        np.testing.assert_array_equal(
            load_index(tmp_path / "myindex.npz").state, index.state
        )

    def test_dynamic_round_trip_without_suffix(self, tmp_path):
        from repro.dynamic import DynamicWalkIndex
        from repro.walks.persistence import (
            load_dynamic_index,
            save_dynamic_index,
        )

        graph = power_law_graph(30, 90, seed=8)
        dyn = DynamicWalkIndex.build(graph, 3, 4, seed=9)
        written = save_dynamic_index(dyn, tmp_path / "snap")
        assert written == tmp_path / "snap.npz"
        back = load_dynamic_index(tmp_path / "snap", graph=graph)
        np.testing.assert_array_equal(back.walks, dyn.walks)

    def test_literal_suffixless_file_is_honored(self, tmp_path):
        """A file genuinely named without .npz loads as given — and an
        overwrite updates it in place rather than writing a shadowed
        .npz sibling that load would never see."""
        graph = power_law_graph(30, 90, seed=3)
        index = FlatWalkIndex.build(graph, 3, 4, seed=4)
        written = save_index(index, tmp_path / "real")
        written.rename(tmp_path / "real")  # strip the suffix on disk
        back = load_index(tmp_path / "real")
        np.testing.assert_array_equal(back.state, index.state)
        replacement = FlatWalkIndex.build(graph, 3, 4, seed=11)
        rewritten = save_index(replacement, tmp_path / "real")
        assert rewritten == tmp_path / "real"
        assert [p.name for p in tmp_path.iterdir()] == ["real"]
        np.testing.assert_array_equal(
            load_index(tmp_path / "real").state, replacement.state
        )

    def test_provenance_accepts_suffixless(self, tmp_path):
        from repro.walks.persistence import index_provenance

        graph = power_law_graph(30, 90, seed=3)
        index = FlatWalkIndex.build(graph, 3, 4, seed=4)
        save_index(index, tmp_path / "prov", graph=graph, engine="csr")
        assert index_provenance(tmp_path / "prov")["engine"] == "csr"


class TestAtomicSave:
    """A crash mid-save must leave the previous good archive intact
    (regression: saves wrote straight to the destination, so an
    interrupted write destroyed both the old and the new archive)."""

    def _boom(self, monkeypatch):
        def failing_savez(file, **payload):
            target = file if isinstance(file, str) else str(file)
            with open(target, "wb") as handle:
                handle.write(b"half-written garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", failing_savez)

    def test_interrupted_static_save_keeps_old_archive(
        self, tmp_path, monkeypatch
    ):
        graph = power_law_graph(40, 120, seed=1)
        index = FlatWalkIndex.build(graph, 3, 4, seed=2)
        path = save_index(index, tmp_path / "walks.npz")
        self._boom(monkeypatch)
        with pytest.raises(OSError):
            save_index(
                FlatWalkIndex.build(graph, 3, 4, seed=5), path
            )
        monkeypatch.undo()
        back = load_index(path)
        np.testing.assert_array_equal(back.state, index.state)
        assert [p.name for p in tmp_path.iterdir()] == ["walks.npz"]

    def test_interrupted_dynamic_save_keeps_old_archive(
        self, tmp_path, monkeypatch
    ):
        from repro.dynamic import DynamicWalkIndex
        from repro.walks.persistence import (
            load_dynamic_index,
            save_dynamic_index,
        )

        graph = power_law_graph(30, 90, seed=2)
        dyn = DynamicWalkIndex.build(graph, 3, 4, seed=3)
        path = save_dynamic_index(dyn, tmp_path / "snap.npz")
        self._boom(monkeypatch)
        with pytest.raises(OSError):
            save_dynamic_index(
                DynamicWalkIndex.build(graph, 3, 4, seed=8), path
            )
        monkeypatch.undo()
        back = load_dynamic_index(path, graph=graph)
        np.testing.assert_array_equal(back.walks, dyn.walks)
        assert [p.name for p in tmp_path.iterdir()] == ["snap.npz"]

    def test_saves_do_not_inherit_mkstemp_permissions(self, tmp_path):
        """The temp-file dance must not leave archives 0600 (mkstemp's
        default) — a saver and a reader are different processes in the
        serving deployment.  Fresh saves honor the umask; overwrites
        keep the destination's existing mode."""
        import os

        graph = power_law_graph(30, 90, seed=1)
        index = FlatWalkIndex.build(graph, 3, 4, seed=2)
        path = save_index(index, tmp_path / "perms.npz")
        umask = os.umask(0)
        os.umask(umask)
        assert (path.stat().st_mode & 0o777) == (0o666 & ~umask)
        os.chmod(path, 0o604)
        save_index(index, path)
        assert (path.stat().st_mode & 0o777) == 0o604


# ----------------------------------------------------------------------
# Persistence v3 (.idx3): memmap containers and the compressed codec
# ----------------------------------------------------------------------
class TestV3RoundTrip:
    @pytest.fixture(scope="class")
    def built(self):
        graph = power_law_graph(70, 210, seed=21)
        index = FlatWalkIndex.build(graph, 4, 8, seed=22)
        return graph, index

    @pytest.mark.parametrize("fmt", ["compressed", "mmap"])
    def test_entries_identical(self, built, fmt, tmp_path):
        graph, index = built
        path = save_index(index, tmp_path / "walks", graph=graph, format=fmt)
        assert path.suffix == ".idx3"
        back = load_index(path, graph=graph)
        assert back.storage_format == fmt
        np.testing.assert_array_equal(back.indptr, index.indptr)
        np.testing.assert_array_equal(back.state, index.state)
        np.testing.assert_array_equal(back.hop, index.hop)
        assert back.state.dtype == index.state.dtype
        assert (back.num_nodes, back.length, back.num_replicates) == (
            index.num_nodes, index.length, index.num_replicates
        )

    @pytest.mark.parametrize("fmt", INDEX_FORMATS)
    def test_selection_identical_across_formats(self, built, fmt, tmp_path):
        graph, index = built
        reference = approx_greedy_fast(graph, 6, index.length, index=index)
        path = save_index(index, tmp_path / "walks", format=fmt)
        for backend in GAIN_BACKENDS:
            got = approx_greedy_fast(
                graph, 6, index.length, index=load_index(path),
                gain_backend=backend,
            )
            assert got.selected == reference.selected, (fmt, backend)
            assert got.gains == reference.gains, (fmt, backend)

    def test_provenance(self, built, tmp_path):
        graph, index = built
        path = save_index(
            index, tmp_path / "prov", graph=graph, engine="csr", seed=22,
            gain_backend="bitset", format="compressed",
        )
        prov = index_provenance(path)
        assert prov["version"] == 3
        assert prov["encoding"] == "compressed"
        assert prov["engine"] == "csr"
        assert prov["seed"] == "22"  # seed material is stored as text
        assert prov["gain_backend"] == "bitset"
        assert prov["graph_num_nodes"] == graph.num_nodes

    def test_suffixless_resolution(self, built, tmp_path):
        graph, index = built
        written = save_index(index, tmp_path / "noext", format="compressed")
        assert written == tmp_path / "noext.idx3"
        back = load_index(tmp_path / "noext")
        np.testing.assert_array_equal(back.state, index.state)

    def test_stale_graph_rejected(self, built, tmp_path):
        graph, index = built
        path = save_index(index, tmp_path / "walks", graph=graph,
                          format="mmap")
        edited = power_law_graph(70, 211, seed=23)
        with pytest.raises(ParameterError, match="stale"):
            load_index(path, graph=edited)

    def test_rows_round_trip(self, built, tmp_path):
        graph, index = built
        path = save_index(index, tmp_path / "walks", format="mmap")
        back = load_index(path)
        rows = back.storage.rows
        assert rows is not None
        np.testing.assert_array_equal(
            rows, index.packed_hit_rows(include_self=True)
        )
        # include_rows=False omits them; the index still answers queries.
        bare = load_index(
            save_index(index, tmp_path / "bare", format="mmap",
                       include_rows=False)
        )
        assert bare.storage.rows is None
        np.testing.assert_array_equal(bare.state, index.state)


class TestFingerprintMismatchMessage:
    def test_names_both_fingerprints_and_path(self, tmp_path):
        """Regression: the stale-index error must name the archive path
        and both fingerprints (stored and actual, in hex) so operators
        can tell *which* archive disagrees and by how much."""
        from repro.graphs.builder import GraphBuilder
        from repro.walks.persistence import graph_fingerprint

        graph = power_law_graph(50, 150, seed=31)
        index = FlatWalkIndex.build(graph, 3, 4, seed=32)
        # Same node and edge counts, different wiring: only the
        # fingerprint check can catch this.
        builder = GraphBuilder()
        for u, v in graph.edge_array().tolist():
            builder.add_edge(u, v)
        builder.build()
        edited = power_law_graph(50, 150, seed=33)
        if edited.num_edges != graph.num_edges:  # pragma: no cover
            pytest.skip("generator did not hit the edge count")
        for fmt in ("dense", "compressed"):
            path = save_index(index, tmp_path / f"fp-{fmt}", graph=graph,
                              format=fmt)
            with pytest.raises(ParameterError) as excinfo:
                load_index(path, graph=edited)
            message = str(excinfo.value)
            assert str(path) in message
            assert f"{graph_fingerprint(edited):#010x}" in message
            assert f"{graph_fingerprint(graph):#010x}" in message


class TestV3FailureModes:
    def _archive(self, tmp_path, fmt="compressed"):
        graph = power_law_graph(40, 120, seed=41)
        index = FlatWalkIndex.build(graph, 3, 4, seed=42)
        return save_index(index, tmp_path / "walks", graph=graph, format=fmt)

    @pytest.mark.parametrize("fmt", ["compressed", "mmap"])
    def test_truncated_archive_rejected(self, tmp_path, fmt):
        path = self._archive(tmp_path, fmt)
        blob = path.read_bytes()
        for cut in (len(blob) - 200, len(blob) // 2, 40, 9):
            path.write_bytes(blob[:cut])
            with pytest.raises(GraphFormatError):
                load_index(path)

    def test_corrupt_magic_rejected(self, tmp_path):
        path = self._archive(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[:8] = b"GARBAGE\x00"
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_corrupt_header_json_rejected(self, tmp_path):
        path = self._archive(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[20] ^= 0xFF  # flip a byte inside the JSON header
        path.write_bytes(bytes(blob))
        with pytest.raises(GraphFormatError):
            load_index(path)

    def test_interrupted_v3_save_keeps_old_archive(
        self, tmp_path, monkeypatch
    ):
        import repro.walks.persistence as persistence

        graph = power_law_graph(40, 120, seed=41)
        index = FlatWalkIndex.build(graph, 3, 4, seed=42)
        path = save_index(index, tmp_path / "walks.idx3", format="compressed")

        def failing_write(tmp_name, header, arrays):
            with open(tmp_name, "wb") as handle:
                handle.write(b"half-written garbage")
            raise OSError("disk full")

        monkeypatch.setattr(persistence, "_write_v3", failing_write)
        with pytest.raises(OSError):
            save_index(
                FlatWalkIndex.build(graph, 3, 4, seed=43), path,
                format="compressed",
            )
        monkeypatch.undo()
        back = load_index(path)
        np.testing.assert_array_equal(back.state, index.state)
        assert [p.name for p in tmp_path.iterdir()] == ["walks.idx3"]


class TestReadOnlyViews:
    """Memmapped archives are opened ``mode="r"``: a served query can
    never write back through the maps, and attempting to is an error
    rather than silent archive corruption."""

    def test_arrays_not_writeable(self, tmp_path):
        graph = power_law_graph(40, 120, seed=51)
        index = FlatWalkIndex.build(graph, 3, 4, seed=52)
        back = load_index(save_index(index, tmp_path / "ro", format="mmap"))
        for array in (back.state, back.hop, back.storage.rows):
            assert not array.flags.writeable
            with pytest.raises(ValueError):
                array[0] = 0

    def test_serving_off_the_map_leaves_archive_intact(self, tmp_path):
        from repro.serve import DominationService

        graph = power_law_graph(60, 180, seed=53)
        index = FlatWalkIndex.build(graph, 4, 6, seed=54)
        path = save_index(index, tmp_path / "serve", graph=graph,
                          format="mmap")
        before = path.read_bytes()
        with DominationService.from_index_file(path, graph) as service:
            served = service.select(5)
        direct = approx_greedy_fast(
            graph, 5, index.length, index=index, objective="f2"
        )
        assert served.selected == direct.selected
        assert path.read_bytes() == before


@pytest.mark.slow
@settings(max_examples=25, deadline=None)
@given(
    num_nodes=st.integers(5, 40),
    extra_edges=st.integers(0, 40),
    length=st.integers(1, 5),
    reps=st.integers(1, 5),
    fmt=st.sampled_from(list(INDEX_FORMATS)),
    engine=st.sampled_from(["numpy", "csr", "sharded"]),
)
def test_v3_round_trip_property(
    tmp_path_factory, num_nodes, extra_edges, length, reps, fmt, engine
):
    """save -> load preserves entries and every solver answer, for any
    format x engine x gain backend."""
    tmp_path = tmp_path_factory.mktemp("v3prop")
    num_edges = min(
        num_nodes + extra_edges,
        num_nodes * 3,
        num_nodes * (num_nodes - 1) // 2,
    )
    graph = power_law_graph(num_nodes, num_edges, seed=num_nodes)
    index = FlatWalkIndex.build(graph, length, reps, seed=7, engine=engine)
    back = load_index(
        save_index(index, tmp_path / "walks", graph=graph, format=fmt),
        graph=graph,
    )
    assert back.same_entries(index)
    np.testing.assert_array_equal(back.state, index.state)
    k = min(4, num_nodes)
    for backend in GAIN_BACKENDS:
        want = approx_greedy_fast(
            graph, k, length, index=index, gain_backend=backend
        )
        got = approx_greedy_fast(
            graph, k, length, index=back, gain_backend=backend
        )
        assert got.selected == want.selected
        assert got.gains == want.gains
