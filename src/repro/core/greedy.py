"""Greedy submodular maximization — Algorithm 1, plus CELF lazy evaluation.

:func:`greedy_select` is the generic kernel every exact/sampled solver in
this package builds on.  It supports two sweep strategies:

* ``lazy=False`` — the textbook Algorithm 1: every round evaluates the
  marginal gain of every remaining candidate.
* ``lazy=True`` — the CELF strategy of Leskovec et al. [19] that the paper
  recommends: gains from earlier rounds upper-bound current gains (by
  submodularity), so candidates sit in a max-heap and only the top is
  re-evaluated.  For a truly submodular objective the selected set is
  identical to the full sweep under the same deterministic tie-breaking
  (smaller node id wins).

The kernel is deliberately objective-agnostic: anything implementing
:class:`repro.core.objectives.SetObjective` works, which is how the DP-based
and sampling-based greedy variants share this code.
"""

from __future__ import annotations

import heapq
import time
from typing import Iterable

from repro.errors import ParameterError
from repro.core.objectives import SetObjective
from repro.core.result import SelectionResult

__all__ = ["greedy_select"]


def greedy_select(
    objective: SetObjective,
    k: int,
    lazy: bool = True,
    candidates: "Iterable[int] | None" = None,
    algorithm_name: str = "greedy",
) -> SelectionResult:
    """Select up to ``k`` nodes greedily maximizing ``objective``.

    Parameters
    ----------
    objective:
        The set function to maximize; assumed nondecreasing submodular for
        the (1 - 1/e) guarantee and for ``lazy=True`` equivalence.
    k:
        Cardinality budget.
    lazy:
        Use CELF lazy evaluation (default) or full sweeps.
    candidates:
        Optional restriction of the ground set (defaults to all nodes).
    algorithm_name:
        Stamped on the returned :class:`SelectionResult`.
    """
    n = objective.num_nodes
    if not 0 <= k <= n:
        raise ParameterError(f"k={k} must lie in [0, n={n}]")
    pool = list(range(n)) if candidates is None else sorted(set(candidates))
    if any(not 0 <= u < n for u in pool):
        raise ParameterError("candidates out of range")
    if k > len(pool):
        raise ParameterError(f"k={k} exceeds candidate pool of {len(pool)}")

    started = time.perf_counter()
    if lazy:
        selected, gains, evaluations = _lazy_rounds(objective, k, pool)
    else:
        selected, gains, evaluations = _full_rounds(objective, k, pool)
    elapsed = time.perf_counter() - started
    return SelectionResult(
        algorithm=algorithm_name,
        selected=tuple(selected),
        gains=tuple(gains),
        elapsed_seconds=elapsed,
        num_gain_evaluations=evaluations,
        params={"k": k, "lazy": lazy},
    )


def _full_rounds(
    objective: SetObjective, k: int, pool: list[int]
) -> tuple[list[int], list[float], int]:
    """Algorithm 1 verbatim: evaluate every candidate every round."""
    selected: list[int] = []
    gains: list[float] = []
    chosen: set[int] = set()
    evaluations = 0
    for _ in range(k):
        best_node = -1
        best_gain = -float("inf")
        for u in pool:
            if u in chosen:
                continue
            gain = objective.marginal_gain(chosen, u)
            evaluations += 1
            if gain > best_gain:  # strict: ties keep the smaller id
                best_gain = gain
                best_node = u
        selected.append(best_node)
        gains.append(best_gain)
        chosen.add(best_node)
    return selected, gains, evaluations


def _lazy_rounds(
    objective: SetObjective, k: int, pool: list[int]
) -> tuple[list[int], list[float], int]:
    """CELF: re-evaluate only the heap top until it is provably maximal."""
    selected: list[int] = []
    gains: list[float] = []
    chosen: set[int] = set()
    evaluations = 0
    # Heap of (-gain, node, round_when_evaluated).  Python's heap is a
    # min-heap, so negate gains; equal gains order by node id, matching the
    # full sweep's first-maximum rule.
    heap: list[tuple[float, int, int]] = []
    for u in pool:
        gain = objective.marginal_gain(chosen, u)
        evaluations += 1
        heap.append((-gain, u, 0))
    heapq.heapify(heap)
    for round_no in range(1, k + 1):
        while True:
            neg_gain, node, stamp = heapq.heappop(heap)
            if stamp == round_no:
                selected.append(node)
                gains.append(-neg_gain)
                chosen.add(node)
                break
            gain = objective.marginal_gain(chosen, node)
            evaluations += 1
            heapq.heappush(heap, (-gain, node, round_no))
    return selected, gains, evaluations
