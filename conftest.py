"""Repo-root pytest configuration.

Defines the benchmark-harness options (they must live in an initial
conftest so both `pytest tests/...` and `pytest benchmarks/bench_*.py`
invocations see them; see benchmarks/conftest.py for the machinery):

* ``--json FILE`` — write machine-readable benchmark measurements
  (timings, speedups, parity verdicts) collected during the run to FILE.
  CI uses this to produce the ``BENCH_<sha>.json`` artifact that
  ``tools/check_bench_regression.py`` gates against
  ``benchmarks/baselines.json``.
* ``--no-timing-gate`` — demote in-bench *timing* assertions (speedup
  floors) to report-only output.  Parity assertions are never gated off:
  they fail hard regardless of this flag.
"""

import json
import platform
import sys
import time
from pathlib import Path

import pytest

# Make `import repro` and `import tests.conftest` work without installing.
sys.path.insert(0, str(Path(__file__).parent / "src"))


def pytest_addoption(parser):
    group = parser.getgroup("repro-bench")
    group.addoption(
        "--json",
        action="store",
        default=None,
        metavar="FILE",
        help="write benchmark measurements collected via the bench_record "
        "fixture to FILE as JSON",
    )
    group.addoption(
        "--no-timing-gate",
        action="store_true",
        default=False,
        help="report timing assertions instead of failing on them "
        "(parity assertions still fail hard)",
    )


def _records(config) -> dict:
    store = getattr(config, "_repro_bench_records", None)
    if store is None:
        store = {}
        config._repro_bench_records = store
    return store


@pytest.fixture
def bench_record(request):
    """Record one named benchmark measurement for the ``--json`` report.

    Key convention (consumed by ``tools/check_bench_regression.py``):
    ``*_s`` seconds (lower is better), ``*_x`` speedup ratios (higher is
    better), ``*_parity`` booleans (must be true).
    """
    store = _records(request.config)

    def record(key: str, value):
        store[key] = value

    return record


@pytest.fixture
def timing_gate(request):
    """True when in-bench timing assertions should fail the run."""
    return not request.config.getoption("--no-timing-gate")


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json")
    if not path:
        return
    payload = {
        "schema": 1,
        "unix_time": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "measurements": _records(session.config),
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
