"""Coverage-kernel head-to-head: entry-list vs bit-packed gain backends.

The acceptance benchmark for the ``gain_backend="bitset"`` kernel
(:mod:`repro.core.coverage_kernel`): the paper's Algorithm 6 greedy with
full gain sweeps at the paper's default R = 100 must be **bit-identical**
to the entry backend (same selections, same gain sequences — a hard
assertion, never gated off) and **at least 2x faster end-to-end**, kernel
construction included (a timing assertion, demoted to report-only under
``--no-timing-gate`` for shared CI runners).

All measurements are recorded through the ``bench_record`` fixture, so a
``--json FILE`` run emits them for ``tools/check_bench_regression.py`` to
compare against ``benchmarks/baselines.json``.  Key reference:

* ``coverage_kernel.greedy_full_*_s`` — end-to-end full-sweep greedy
  (engine construction + k rounds), both backends, plus ``*_speedup_x``.
* ``coverage_kernel.greedy_celf_*`` — the same under CELF lazy
  evaluation (report-only: CELF already skips most sweep work, which is
  exactly what makes the full-sweep comparison the interesting one).
* ``coverage_kernel.kernel_build_s`` / ``run_only_speedup_x`` — the
  construction/run split behind the end-to-end number.
* ``*_parity`` — True iff selections and gain sequences matched.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import best_of

from repro.graphs.generators import power_law_graph
from repro.walks.index import FlatWalkIndex
from repro.core.approx_fast import FastApproxEngine, approx_greedy_fast
from repro.core.coverage_kernel import CoverageKernel

#: The benchmark instance: a power-law graph at the paper's default R.
NODES = 2_000
EDGES = 12_000
LENGTH = 8
REPLICATES = 100
BUDGET = 100


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(NODES, EDGES, seed=7)


@pytest.fixture(scope="module")
def index(graph):
    return FlatWalkIndex.build(graph, LENGTH, REPLICATES, seed=1)


def test_algorithm6_full_sweep_head_to_head(
    graph, index, bench_record, timing_gate
):
    """The standing claim: bitset >= 2x on full-sweep Algorithm 6, R=100."""
    entries_s, entries = best_of(2, lambda: approx_greedy_fast(
        graph, BUDGET, LENGTH, index=index, objective="f2", lazy=False,
    ))
    bitset_s, bitset = best_of(2, lambda: approx_greedy_fast(
        graph, BUDGET, LENGTH, index=index, objective="f2", lazy=False,
        gain_backend="bitset",
    ))
    parity = (
        entries.selected == bitset.selected and entries.gains == bitset.gains
    )
    speedup = entries_s / bitset_s
    bench_record("coverage_kernel.greedy_full_entries_s", entries_s)
    bench_record("coverage_kernel.greedy_full_bitset_s", bitset_s)
    bench_record("coverage_kernel.greedy_full_speedup_x", speedup)
    bench_record("coverage_kernel.greedy_full_parity", parity)
    print(
        f"\nAlgorithm 6 full sweeps (n={NODES}, R={REPLICATES}, "
        f"L={LENGTH}, k={BUDGET}): entries {entries_s * 1e3:.0f} ms, "
        f"bitset {bitset_s * 1e3:.0f} ms -> {speedup:.1f}x"
    )
    # Parity is the hard gate: same selections, same gain sequences.
    assert parity, "bitset backend diverged from the entry backend"
    if timing_gate:
        assert speedup >= 2.0, (
            f"bitset only {speedup:.2f}x faster than entries on the "
            "full-sweep Algorithm 6 benchmark"
        )
    elif speedup < 2.0:
        print(f"TIMING (report-only): speedup {speedup:.2f}x < 2.0x floor")


def test_algorithm6_celf_head_to_head(graph, index, bench_record):
    """CELF comparison — parity hard, timings report-only.

    CELF already collapses per-round work to a handful of entry-slice
    queries, so the kernel's construction cost dominates at this scale;
    the numbers are recorded to keep that trade-off visible.
    """
    entries_s, entries = best_of(2, lambda: approx_greedy_fast(
        graph, BUDGET, LENGTH, index=index, objective="f2", lazy=True,
    ))
    bitset_s, bitset = best_of(2, lambda: approx_greedy_fast(
        graph, BUDGET, LENGTH, index=index, objective="f2", lazy=True,
        gain_backend="bitset",
    ))
    parity = (
        entries.selected == bitset.selected and entries.gains == bitset.gains
    )
    bench_record("coverage_kernel.greedy_celf_entries_s", entries_s)
    bench_record("coverage_kernel.greedy_celf_bitset_s", bitset_s)
    bench_record("coverage_kernel.greedy_celf_parity", parity)
    print(
        f"\nAlgorithm 6 CELF (k={BUDGET}): entries {entries_s * 1e3:.0f} ms, "
        f"bitset {bitset_s * 1e3:.0f} ms"
    )
    assert parity, "bitset backend diverged from the entry backend (CELF)"


def test_construction_and_run_split(graph, index, bench_record):
    """Where the end-to-end number comes from: build once, run fast."""
    build_s, _ = best_of(2, lambda: CoverageKernel.from_index(index, "f2"))

    def run(backend):
        # Time only the greedy loop on a pre-built engine.
        engine = FastApproxEngine(index, "f2", gain_backend=backend)
        started = time.perf_counter()
        engine.run(BUDGET, lazy=False)
        return time.perf_counter() - started, engine

    entries_run_s, entries_engine = run("entries")
    bitset_run_s, bitset_engine = run("bitset")
    bench_record("coverage_kernel.kernel_build_s", build_s)
    bench_record("coverage_kernel.run_only_entries_s", entries_run_s)
    bench_record("coverage_kernel.run_only_bitset_s", bitset_run_s)
    bench_record(
        "coverage_kernel.run_only_speedup_x", entries_run_s / bitset_run_s
    )
    print(
        f"\nkernel build {build_s * 1e3:.0f} ms; greedy loop only: entries "
        f"{entries_run_s * 1e3:.0f} ms, bitset {bitset_run_s * 1e3:.0f} ms "
        f"-> {entries_run_s / bitset_run_s:.1f}x"
    )
    assert entries_engine.selected == bitset_engine.selected


def test_popcount_query_parity(index, bench_record):
    """popcount(cand & ~covered) == maintained gain == entry gain, always."""
    entries = FastApproxEngine(index, "f2")
    kernel = CoverageKernel.from_index(index, "f2")
    rng = np.random.default_rng(0)
    probes = rng.choice(NODES, size=64, replace=False)
    for node in probes[:8]:
        entries.select(int(node))
        kernel.select(int(node))
    parity = all(
        kernel.popcount_gain(int(u))
        == kernel.gain_of(int(u))
        == entries.gain_of(int(u))
        for u in probes
    )
    bench_record("coverage_kernel.popcount_query_parity", parity)
    assert parity

    started = time.perf_counter()
    for u in probes:
        kernel.popcount_gain(int(u))
    per_query = (time.perf_counter() - started) / probes.size
    bench_record("coverage_kernel.popcount_query_s", per_query)
    print(f"\npopcount gain query: {per_query * 1e6:.1f} us")
