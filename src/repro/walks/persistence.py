"""Walk-index persistence.

Building the inverted walk index (Algorithm 3) is the dominant cost of the
approximate greedy solvers; everything after it is sub-second.  Persisting
the index lets operational workflows — parameter sweeps over ``k``,
re-ranking after a business-rule change, the paper's own Figs. 6-7 protocol
of reading one greedy run at several budgets — pay that cost once.

The format is a single ``.npz`` (numpy archive): the three flat arrays plus
a small integer header.  Version 2 adds provenance metadata (walk-engine
name, seed material, gain-backend) and a fingerprint of the graph the index
was built on, so :func:`load_index` can refuse a *stale* index — one whose
graph has since been edited — instead of silently producing selections for
a topology that no longer exists.  Version-stamped; version-1 archives
(no metadata) still load.

:func:`save_dynamic_index` / :func:`load_dynamic_index` persist the richer
:class:`~repro.dynamic.index.DynamicWalkIndex` as a *journal-aware
snapshot*: the graph CSR, the trajectories, the entry arrays, the seed
material, and the journal epoch.  A reloaded snapshot resumes incremental
maintenance exactly where it left off — ``sync`` against the owning
:class:`~repro.dynamic.graph.DynamicGraph` replays only the journal suffix
after the stored epoch (the frozen uniform stream is regenerated from the
seed material on first use, so snapshots stay small).
"""

from __future__ import annotations

import os
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import GraphFormatError, ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.index import FlatWalkIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dynamic.index import DynamicWalkIndex

__all__ = [
    "save_index",
    "load_index",
    "index_provenance",
    "graph_fingerprint",
    "save_dynamic_index",
    "load_dynamic_index",
]

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)
_DYNAMIC_FORMAT_VERSION = 1


def _resolve_archive_path(path: "str | Path") -> Path:
    """The path an index archive actually lives at.

    ``np.savez`` silently appends ``.npz`` to any filename that lacks it,
    so ``save_index(idx, "myindex")`` used to write ``myindex.npz`` while
    ``load_index("myindex")`` looked for the literal name and failed.
    Both sides now resolve identically: a literal path that already
    exists as a file is honored as-is (so a genuinely suffixless archive
    can be overwritten and re-read, never shadowed by a fresh
    ``.npz``-suffixed sibling); otherwise the ``.npz`` suffix is
    appended when missing.  The atomic writer never hands the resolved
    name to numpy (the temp file carries the suffix), so no second
    normalization can sneak in.
    """
    path = Path(path)
    if path.suffix == ".npz" or path.is_file():
        return path
    return path.with_name(path.name + ".npz")


def _atomic_savez(path: Path, payload: dict) -> None:
    """``np.savez_compressed`` through a same-directory temp + rename.

    Writing straight to the destination would truncate the previous good
    archive before the new one is complete, so a crash mid-write loses
    both.  The temp file keeps the ``.npz`` suffix (otherwise numpy would
    append one and the rename would miss it) and ``os.replace`` makes the
    swap atomic on POSIX — the snapshot-publish contract the serving
    layer (:mod:`repro.serve`) relies on.

    The temp file is created with mode ``0o666`` and the kernel applies
    the process umask (what a plain ``open()`` would have produced —
    ``tempfile.mkstemp``'s 0600 would make a maintenance job's archives
    unreadable by a separately-running serving process, and probing the
    umask via ``os.umask`` would briefly mutate process-global state
    under concurrent saver threads); overwrites then adopt the
    destination's existing mode.
    """
    tmp_name = None
    for attempt in range(100):
        candidate = path.with_name(
            f"{path.name}.tmp-{os.getpid()}-{attempt}.npz"
        )
        try:
            fd = os.open(
                candidate, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666
            )
        except FileExistsError:  # pragma: no cover - concurrent saver
            continue
        os.close(fd)
        tmp_name = str(candidate)
        break
    if tmp_name is None:  # pragma: no cover - 100 stale temp files
        raise GraphFormatError(
            f"{path}: cannot create a temporary sibling for atomic save"
        )
    try:
        try:
            os.chmod(tmp_name, os.stat(path).st_mode & 0o777)
        except OSError:
            pass  # fresh destination: keep the umask-derived mode
        np.savez_compressed(tmp_name, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def graph_fingerprint(graph: Graph) -> int:
    """CRC of the exact CSR arrays — changes on any edge edit.

    Cheap (one pass over the adjacency) and order-sensitive by
    construction: two graphs fingerprint equal iff their canonical CSR
    arrays are byte-identical, which for this package's builders means
    the graphs are equal.
    """
    crc = zlib.crc32(np.ascontiguousarray(graph.indptr).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(graph.indices).tobytes(), crc)
    return crc


def _check_graph_match(
    path: Path,
    graph: Graph,
    num_nodes: int,
    meta: "dict | None",
) -> None:
    """Raise :class:`ParameterError` when an index is stale for ``graph``."""
    if graph.num_nodes != num_nodes:
        raise ParameterError(
            f"{path}: index was built for {num_nodes} nodes but the graph "
            f"has {graph.num_nodes}"
        )
    if meta is None:
        return
    if meta["graph_num_edges"] != graph.num_edges:
        raise ParameterError(
            f"{path}: stale index — built on a graph with "
            f"{meta['graph_num_edges']} edges, this graph has "
            f"{graph.num_edges}; rebuild the index (or use "
            "repro.dynamic to maintain it incrementally)"
        )
    if meta["graph_fingerprint"] != graph_fingerprint(graph):
        raise ParameterError(
            f"{path}: stale index — the graph's adjacency no longer "
            "matches the one the index was built on; rebuild the index "
            "(or use repro.dynamic to maintain it incrementally)"
        )


def save_index(
    index: FlatWalkIndex,
    path: "str | Path",
    graph: "Graph | None" = None,
    engine: "str | None" = None,
    seed: "int | str | None" = None,
    gain_backend: "str | None" = None,
) -> Path:
    """Write a :class:`FlatWalkIndex` to ``path`` as an ``.npz`` archive.

    The optional keyword metadata is provenance for the version-2 header:
    ``engine`` (walk backend that generated the walks), ``seed`` (seed
    material, stored as text so arbitrary-precision entropy survives),
    ``gain_backend`` (gain machinery the index was validated with), and
    ``graph`` — when given, the graph's shape and CSR fingerprint are
    stored and enforced at load time.

    The destination resolves exactly as :func:`load_index` resolves it
    (an existing literal file is overwritten in place; otherwise a
    missing ``.npz`` suffix is appended — numpy's own convention), so
    save/load round-trips for any path.  The write is atomic: a temp
    file in the destination directory, renamed into place, so a crash
    mid-write never destroys a previous good archive.  Returns the path
    actually written.
    """
    path = _resolve_archive_path(path)
    payload: dict = {
        "version": np.int64(_FORMAT_VERSION),
        "header": np.asarray(
            [index.num_nodes, index.length, index.num_replicates],
            dtype=np.int64,
        ),
        "indptr": index.indptr,
        "state": index.state,
        "hop": index.hop,
        "meta_engine": np.str_(engine or ""),
        "meta_seed": np.str_("" if seed is None else str(seed)),
        "meta_gain_backend": np.str_(gain_backend or ""),
    }
    if graph is not None:
        if graph.num_nodes != index.num_nodes:
            raise ParameterError(
                "provenance graph does not match the index node count"
            )
        payload["graph_meta"] = np.asarray(
            [graph.num_nodes, graph.num_edges, graph_fingerprint(graph)],
            dtype=np.int64,
        )
    _atomic_savez(path, payload)
    return path


def _read_graph_meta(archive) -> "dict | None":
    if "graph_meta" not in archive.files:
        return None
    raw = archive["graph_meta"]
    return {
        "graph_num_nodes": int(raw[0]),
        "graph_num_edges": int(raw[1]),
        "graph_fingerprint": int(raw[2]),
    }


def load_index(
    path: "str | Path", graph: "Graph | None" = None
) -> FlatWalkIndex:
    """Read a :class:`FlatWalkIndex` written by :func:`save_index`.

    Validates the version stamp and the structural invariants (indptr
    monotone and consistent with the entry arrays) so a truncated or
    foreign file fails loudly instead of corrupting a selection run.

    Pass the ``graph`` the index is about to be used with to also enforce
    freshness: a node-count mismatch always raises
    :class:`ParameterError`, and for version-2 archives carrying graph
    provenance, an edge-count or adjacency-fingerprint mismatch (a stale
    index for an edited graph) raises too.

    Accepts the same suffixless paths :func:`save_index` does: when the
    literal path does not exist, the ``.npz``-suffixed name is tried.
    """
    path = _resolve_archive_path(path)
    try:
        with np.load(path) as archive:
            missing = {"version", "header", "indptr", "state", "hop"} - set(
                archive.files
            )
            if missing:
                raise GraphFormatError(
                    f"{path}: not a walk-index archive (missing {sorted(missing)})"
                )
            version = int(archive["version"])
            if version not in _READABLE_VERSIONS:
                raise GraphFormatError(
                    f"{path}: unsupported index format version {version}"
                )
            header = archive["header"]
            num_nodes, length, num_replicates = (int(v) for v in header)
            indptr = archive["indptr"]
            state = archive["state"]
            hop = archive["hop"]
            graph_meta = _read_graph_meta(archive)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable index archive") from exc
    if graph is not None:
        _check_graph_match(path, graph, num_nodes, graph_meta)
    try:
        return FlatWalkIndex(
            indptr=indptr,
            state=state,
            hop=hop,
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
        )
    except ParameterError as exc:
        raise GraphFormatError(f"{path}: inconsistent index arrays") from exc


def index_provenance(path: "str | Path") -> dict:
    """Provenance metadata of a saved index (empty strings when absent).

    Returns ``engine``, ``seed`` (text), ``gain_backend``, and — when the
    archive carries graph provenance — ``graph_num_nodes`` /
    ``graph_num_edges`` / ``graph_fingerprint``.
    """
    path = _resolve_archive_path(path)
    try:
        with np.load(path) as archive:
            if "version" not in archive.files:
                raise GraphFormatError(f"{path}: not a walk-index archive")
            info = {
                "version": int(archive["version"]),
                "engine": str(archive["meta_engine"])
                if "meta_engine" in archive.files
                else "",
                "seed": str(archive["meta_seed"])
                if "meta_seed" in archive.files
                else "",
                "gain_backend": str(archive["meta_gain_backend"])
                if "meta_gain_backend" in archive.files
                else "",
            }
            meta = _read_graph_meta(archive)
            if meta is not None:
                info.update(meta)
            return info
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable index archive") from exc


# ----------------------------------------------------------------------
# Journal-aware dynamic snapshots
# ----------------------------------------------------------------------
def save_dynamic_index(index: "DynamicWalkIndex", path: "str | Path") -> Path:
    """Persist a :class:`~repro.dynamic.index.DynamicWalkIndex` snapshot.

    Stores everything incremental maintenance needs to resume: the graph
    CSR at the index's epoch, the trajectories, the canonical entry
    arrays, the seed material / engine provenance, and the epoch itself.
    The frozen uniform stream is *not* stored — it regenerates
    deterministically from the seed material.  Suffix handling and
    atomicity follow :func:`save_index`: the snapshot lands at a
    ``*.npz`` path (returned) via a same-directory temp file and
    ``os.replace``.
    """
    path = _resolve_archive_path(path)
    graph = index.graph
    _atomic_savez(path, {
        "dynamic_version": np.int64(_DYNAMIC_FORMAT_VERSION),
        "header": np.asarray(
            [
                index.num_nodes,
                index.length,
                index.num_replicates,
                index.epoch,
                index.num_shards,
            ],
            dtype=np.int64,
        ),
        "indptr": index.flat.indptr,
        "state": index.flat.state,
        "hop": index.flat.hop,
        "walks": index.walks,
        "graph_indptr": graph.indptr,
        "graph_indices": graph.indices,
        "meta_engine": np.str_(index.engine_name),
        "meta_seed": np.str_(str(index.seed_entropy)),
    })
    return path


def load_dynamic_index(
    path: "str | Path", graph: "Graph | None" = None
) -> "DynamicWalkIndex":
    """Reload a snapshot written by :func:`save_dynamic_index`.

    The snapshot carries its own graph (the snapshot-epoch topology);
    pass ``graph`` to additionally assert it matches — a mismatch raises
    :class:`ParameterError`, the stale-index guard for callers that load
    a snapshot against what they believe is the same graph.
    """
    from repro.dynamic.index import DynamicWalkIndex

    path = _resolve_archive_path(path)
    required = {
        "dynamic_version", "header", "indptr", "state", "hop",
        "walks", "graph_indptr", "graph_indices", "meta_engine", "meta_seed",
    }
    try:
        with np.load(path) as archive:
            missing = required - set(archive.files)
            if missing:
                raise GraphFormatError(
                    f"{path}: not a dynamic-index snapshot "
                    f"(missing {sorted(missing)})"
                )
            version = int(archive["dynamic_version"])
            if version != _DYNAMIC_FORMAT_VERSION:
                raise GraphFormatError(
                    f"{path}: unsupported dynamic snapshot version {version}"
                )
            header = archive["header"]
            num_nodes, length, num_replicates, epoch, num_shards = (
                int(v) for v in header
            )
            indptr = archive["indptr"]
            state = archive["state"]
            hop = archive["hop"]
            walks = archive["walks"]
            snapshot_graph = Graph(
                archive["graph_indptr"], archive["graph_indices"]
            )
            engine_name = str(archive["meta_engine"])
            entropy = int(str(archive["meta_seed"]))
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable dynamic snapshot") from exc
    if graph is not None and (
        graph.num_nodes != snapshot_graph.num_nodes
        or graph_fingerprint(graph) != graph_fingerprint(snapshot_graph)
    ):
        raise ParameterError(
            f"{path}: snapshot graph does not match the supplied graph "
            "(the snapshot was taken at a different epoch or on a "
            "different graph)"
        )
    try:
        flat = FlatWalkIndex(
            indptr=indptr,
            state=state,
            hop=hop,
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
        )
        if walks.shape != (num_nodes * num_replicates, length + 1):
            raise ParameterError("walk matrix shape mismatch")
    except ParameterError as exc:
        raise GraphFormatError(f"{path}: inconsistent snapshot arrays") from exc
    return DynamicWalkIndex(
        graph=snapshot_graph,
        flat=flat,
        walks=np.ascontiguousarray(walks),
        seed_entropy=entropy,
        engine_name=engine_name,
        num_shards=num_shards,
        epoch=epoch,
    )
