"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import (
    complete_graph,
    paper_example_graph,
    path_graph,
    power_law_graph,
    ring_graph,
    star_graph,
    two_cluster_graph,
)

#: The eight walks of the paper's Example 3.1, 0-based (R=1, L=2).
EXAMPLE31_WALKS = [
    [0, 1, 2],  # (v1, v2, v3)
    [1, 2, 4],  # (v2, v3, v5)
    [2, 1, 4],  # (v3, v2, v5)
    [3, 6, 4],  # (v4, v7, v5)
    [4, 1, 5],  # (v5, v2, v6)
    [5, 6, 4],  # (v6, v7, v5)
    [6, 4, 6],  # (v7, v5, v7)
    [7, 6, 3],  # (v8, v7, v4)
]

#: Gains the paper computes in round 1 of Example 3.1 (Problem 1), 0-based.
EXAMPLE31_ROUND1_GAINS = [2.0, 5.0, 3.0, 2.0, 3.0, 2.0, 5.0, 2.0]


@pytest.fixture
def example_graph():
    """The paper's Fig. 1 running example (8 nodes)."""
    return paper_example_graph()


@pytest.fixture
def example_walks():
    return [list(walk) for walk in EXAMPLE31_WALKS]


@pytest.fixture
def path5():
    return path_graph(5)


@pytest.fixture
def ring6():
    return ring_graph(6)


@pytest.fixture
def star4():
    """Star with center 0 and leaves 1..4."""
    return star_graph(4)


@pytest.fixture
def k5():
    return complete_graph(5)


@pytest.fixture
def small_power_law():
    """Deterministic 60-node power-law graph used across algorithm tests."""
    return power_law_graph(60, 180, seed=17)


@pytest.fixture
def medium_power_law():
    """Deterministic 200-node power-law graph for integration-ish tests."""
    return power_law_graph(200, 800, seed=23)


@pytest.fixture
def clusters():
    return two_cluster_graph(8, bridge_edges=1, seed=5)


@pytest.fixture
def rng():
    return np.random.default_rng(99)
