"""One entry point per exhibit of the paper's evaluation (Section 4).

Each ``table2`` / ``figN`` function runs the underlying experiment and
returns an :class:`~repro.experiments.reporting.ExperimentTable` whose rows
are the series the paper plots.  The benchmark suite under ``benchmarks/``
calls these and prints the tables; EXPERIMENTS.md records paper-vs-measured.

Conventions:

* Figure parameters default to the paper's settings (k, L, R grids); graph
  sizes honor ``config.scale`` (DESIGN.md §4) so the suite runs anywhere.
* Quality metrics (AHT / EHN) are evaluated exactly via the DP, not
  sampled — same quantities, zero evaluation noise.
* Runtime rows report wall-clock seconds of the full selection (for the
  approximate algorithms that includes building the walk index, matching
  how the paper times them).
"""

from __future__ import annotations

from typing import Sequence

from repro.graphs.datasets import (
    TABLE2_DATASETS,
    load_dataset,
    paper_synthetic_graph,
    scalability_graph,
)
from repro.graphs.properties import degree_summary, density
from repro.core.approx_fast import approx_greedy_fast
from repro.core.dp_greedy import dpf1, dpf2
from repro.experiments.config import HarnessConfig, default_config
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import quality_series, run_algorithm

__all__ = [
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig6_fig7",
    "fig8",
    "fig9",
    "fig10",
]

#: Algorithms compared on the real-dataset figures (paper Figs. 6-8, 10).
DATASET_ALGORITHMS = ("Degree", "Dominate", "ApproxF1", "ApproxF2")

#: R grid of the accuracy figures (paper Figs. 2-3, 5).
R_GRID = (50, 100, 150, 200, 250)


def _config(config: "HarnessConfig | None") -> HarnessConfig:
    return default_config() if config is None else config


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------
def table2(config: "HarnessConfig | None" = None) -> ExperimentTable:
    """Dataset summary (Table 2) plus replica statistics.

    ``spec `` columns echo the paper's numbers; ``built `` columns describe
    the synthetic replica actually constructed at ``config.scale``.
    """
    cfg = _config(config)
    table = ExperimentTable(
        title="Table 2: summary of the datasets",
        columns=(
            "name", "spec nodes", "spec edges", "built nodes", "built edges",
            "built max deg", "built density",
        ),
        notes=[
            f"replicas built at scale={cfg.scale} (power-law model, fixed seeds)",
        ],
    )
    for spec in TABLE2_DATASETS:
        graph = load_dataset(spec.name, scale=cfg.scale)
        summary = degree_summary(graph)
        table.add_row(
            spec.name,
            spec.num_nodes,
            spec.num_edges,
            graph.num_nodes,
            graph.num_edges,
            summary.maximum,
            density(graph),
        )
    return table


# ----------------------------------------------------------------------
# Figures 2-3: DP vs Approx quality on the small synthetic graph
# ----------------------------------------------------------------------
def _accuracy_figure(
    objective: str,
    config: "HarnessConfig | None",
    r_values: Sequence[int],
    lengths: Sequence[int],
    k: int,
) -> ExperimentTable:
    cfg = _config(config)
    graph = paper_synthetic_graph(seed=cfg.seed)
    dp_name = "DPF1" if objective == "f1" else "DPF2"
    approx_name = "ApproxF1" if objective == "f1" else "ApproxF2"
    table = ExperimentTable(
        title=(
            f"Fig {'2' if objective == 'f1' else '3'}: {dp_name} vs "
            f"{approx_name} on synthetic n=1000 graph (k={k})"
        ),
        columns=("L", "algorithm", "R", "AHT", "EHN"),
        notes=["AHT lower is better; EHN higher is better; metrics exact"],
    )
    dp_runner = dpf1 if objective == "f1" else dpf2
    for length in lengths:
        dp_result = dp_runner(graph, k, length)
        for point in quality_series(graph, dp_result, [k], length):
            table.add_row(length, dp_name, "-", point.aht, point.ehn)
        for r in r_values:
            approx = approx_greedy_fast(
                graph, k, length, num_replicates=r, objective=objective,
                seed=cfg.seed + r,
            )
            for point in quality_series(graph, approx, [k], length):
                table.add_row(length, approx_name, r, point.aht, point.ehn)
    return table


def fig2(
    config: "HarnessConfig | None" = None,
    r_values: Sequence[int] = R_GRID,
    lengths: Sequence[int] = (5, 10),
    k: int = 30,
) -> ExperimentTable:
    """Fig. 2: effectiveness of DPF1 vs ApproxF1 as a function of R."""
    return _accuracy_figure("f1", config, r_values, lengths, k)


def fig3(
    config: "HarnessConfig | None" = None,
    r_values: Sequence[int] = R_GRID,
    lengths: Sequence[int] = (5, 10),
    k: int = 30,
) -> ExperimentTable:
    """Fig. 3: effectiveness of DPF2 vs ApproxF2 as a function of R."""
    return _accuracy_figure("f2", config, r_values, lengths, k)


# ----------------------------------------------------------------------
# Figures 4-5: DP vs Approx running time on the small synthetic graph
# ----------------------------------------------------------------------
def fig4(
    config: "HarnessConfig | None" = None,
    lengths: Sequence[int] = (5, 10),
    num_replicates: int = 250,
    k: int = 30,
) -> ExperimentTable:
    """Fig. 4: running time of the DP-based vs approximate greedy.

    The DP algorithms run the paper's full-sweep Algorithm 1 (``lazy=False``)
    — the configuration whose cost the paper reports; approximate runs use
    R = 250 as in the paper.
    """
    cfg = _config(config)
    graph = paper_synthetic_graph(seed=cfg.seed)
    table = ExperimentTable(
        title=f"Fig 4: running time, DP vs approximate greedy (k={k}, R={num_replicates})",
        columns=("L", "algorithm", "seconds"),
        notes=["DP variants use full sweeps, as costed in the paper"],
    )
    for length in lengths:
        for name, runner in (
            ("DPF1", lambda: dpf1(graph, k, length, lazy=False)),
            (
                "ApproxF1",
                lambda: approx_greedy_fast(
                    graph, k, length, num_replicates=num_replicates,
                    objective="f1", seed=cfg.seed,
                ),
            ),
            ("DPF2", lambda: dpf2(graph, k, length, lazy=False)),
            (
                "ApproxF2",
                lambda: approx_greedy_fast(
                    graph, k, length, num_replicates=num_replicates,
                    objective="f2", seed=cfg.seed,
                ),
            ),
        ):
            result = runner()
            table.add_row(length, name, result.elapsed_seconds)
    return table


def fig5(
    config: "HarnessConfig | None" = None,
    r_values: Sequence[int] = R_GRID,
    lengths: Sequence[int] = (5, 10),
    k: int = 30,
) -> ExperimentTable:
    """Fig. 5: approximate-greedy running time as a function of R."""
    cfg = _config(config)
    graph = paper_synthetic_graph(seed=cfg.seed)
    table = ExperimentTable(
        title=f"Fig 5: ApproxF1/ApproxF2 running time vs R (k={k})",
        columns=("L", "algorithm", "R", "seconds"),
    )
    for length in lengths:
        for objective, name in (("f1", "ApproxF1"), ("f2", "ApproxF2")):
            for r in r_values:
                result = approx_greedy_fast(
                    graph, k, length, num_replicates=r, objective=objective,
                    seed=cfg.seed + r,
                )
                table.add_row(length, name, r, result.elapsed_seconds)
    return table


# ----------------------------------------------------------------------
# Figures 6-7: quality vs k on the four datasets
# ----------------------------------------------------------------------
def fig6_fig7(
    config: "HarnessConfig | None" = None,
    datasets: "Sequence[str] | None" = None,
) -> tuple[ExperimentTable, ExperimentTable]:
    """Figs. 6-7 share their runs: AHT and EHN vs k on every dataset."""
    cfg = _config(config)
    names = [s.name for s in TABLE2_DATASETS] if datasets is None else list(datasets)
    budgets = [k for k in cfg.budgets]
    kmax = max(budgets)
    aht = ExperimentTable(
        title=f"Fig 6: AHT vs k (L={cfg.length}, R={cfg.num_replicates})",
        columns=("dataset", "algorithm", "k", "AHT"),
        notes=["lower is better"],
    )
    ehn = ExperimentTable(
        title=f"Fig 7: EHN vs k (L={cfg.length}, R={cfg.num_replicates})",
        columns=("dataset", "algorithm", "k", "EHN"),
        notes=["higher is better"],
    )
    for dataset in names:
        graph = load_dataset(dataset, scale=cfg.scale)
        for algorithm in DATASET_ALGORITHMS:
            result = run_algorithm(
                algorithm, graph, kmax, cfg.length,
                num_replicates=cfg.num_replicates, seed=cfg.seed,
            )
            for point in quality_series(graph, result, budgets, cfg.length):
                aht.add_row(dataset, algorithm, point.k, point.aht)
                ehn.add_row(dataset, algorithm, point.k, point.ehn)
    return aht, ehn


def fig6(
    config: "HarnessConfig | None" = None,
    datasets: "Sequence[str] | None" = None,
) -> ExperimentTable:
    """Fig. 6: average hitting time vs k."""
    return fig6_fig7(config, datasets)[0]


def fig7(
    config: "HarnessConfig | None" = None,
    datasets: "Sequence[str] | None" = None,
) -> ExperimentTable:
    """Fig. 7: expected number of hitting nodes vs k."""
    return fig6_fig7(config, datasets)[1]


# ----------------------------------------------------------------------
# Figure 8: running time vs k and vs L on Epinions
# ----------------------------------------------------------------------
def fig8(
    config: "HarnessConfig | None" = None,
    dataset: str = "Epinions",
    budgets: "Sequence[int] | None" = None,
    lengths: Sequence[int] = (2, 4, 6, 8, 10),
) -> ExperimentTable:
    """Fig. 8: running time vs k (L fixed) and vs L (k fixed)."""
    cfg = _config(config)
    graph = load_dataset(dataset, scale=cfg.scale)
    budgets = list(cfg.budgets) if budgets is None else list(budgets)
    table = ExperimentTable(
        title=f"Fig 8: running time on {dataset} (R={cfg.num_replicates})",
        columns=("sweep", "k", "L", "algorithm", "seconds"),
    )
    for k in budgets:
        for algorithm in DATASET_ALGORITHMS:
            result = run_algorithm(
                algorithm, graph, k, cfg.length,
                num_replicates=cfg.num_replicates, seed=cfg.seed,
            )
            table.add_row("vs-k", k, cfg.length, algorithm, result.elapsed_seconds)
    kmax = max(budgets)
    for length in lengths:
        for algorithm in DATASET_ALGORITHMS:
            result = run_algorithm(
                algorithm, graph, kmax, length,
                num_replicates=cfg.num_replicates, seed=cfg.seed,
            )
            table.add_row("vs-L", kmax, length, algorithm, result.elapsed_seconds)
    return table


# ----------------------------------------------------------------------
# Figure 9: scalability on growing synthetic graphs
# ----------------------------------------------------------------------
def fig9(
    config: "HarnessConfig | None" = None,
    indices: Sequence[int] = tuple(range(1, 11)),
    k: int = 100,
    length: int = 6,
    num_replicates: int = 20,
) -> ExperimentTable:
    """Fig. 9: ApproxF1/ApproxF2 runtime on the G1..G10 family.

    The paper's family has ``i * 0.1M`` nodes and ``i * 1M`` edges; sizes
    honor ``config.scale``.  ``R`` defaults to 20 here (a constant factor on
    the x-axis-linear trend) so the sweep stays laptop-friendly; pass 100
    for the paper's setting.
    """
    cfg = _config(config)
    table = ExperimentTable(
        title=f"Fig 9: scalability (k={k}, L={length}, R={num_replicates})",
        columns=("i", "nodes", "edges", "algorithm", "seconds"),
        notes=[f"graph sizes scaled by {cfg.scale}"],
    )
    for i in indices:
        graph = scalability_graph(i, scale=cfg.scale, seed=cfg.seed)
        for objective, name in (("f1", "ApproxF1"), ("f2", "ApproxF2")):
            result = approx_greedy_fast(
                graph, min(k, graph.num_nodes), length,
                num_replicates=num_replicates, objective=objective,
                seed=cfg.seed + i,
            )
            table.add_row(
                i, graph.num_nodes, graph.num_edges, name, result.elapsed_seconds
            )
    return table


# ----------------------------------------------------------------------
# Figure 10: effect of the walk length L
# ----------------------------------------------------------------------
def fig10(
    config: "HarnessConfig | None" = None,
    datasets: Sequence[str] = ("CAGrQc", "CAHepPh"),
    lengths: Sequence[int] = (2, 4, 6, 8, 10),
    k: int = 60,
) -> ExperimentTable:
    """Fig. 10: AHT and EHN as functions of L (k fixed).

    Selections of the approximate algorithms are recomputed per L (their
    walk index depends on L); the baselines' selections are L-independent
    but are re-evaluated under each L.
    """
    cfg = _config(config)
    table = ExperimentTable(
        title=f"Fig 10: effect of L (k={k}, R={cfg.num_replicates})",
        columns=("dataset", "algorithm", "L", "AHT", "EHN"),
    )
    for dataset in datasets:
        graph = load_dataset(dataset, scale=cfg.scale)
        baseline_results = {
            name: run_algorithm(name, graph, k, cfg.length, seed=cfg.seed)
            for name in ("Degree", "Dominate")
        }
        for length in lengths:
            for name, result in baseline_results.items():
                for point in quality_series(graph, result, [k], length):
                    table.add_row(dataset, name, length, point.aht, point.ehn)
            for algorithm in ("ApproxF1", "ApproxF2"):
                result = run_algorithm(
                    algorithm, graph, k, length,
                    num_replicates=cfg.num_replicates, seed=cfg.seed,
                )
                for point in quality_series(graph, result, [k], length):
                    table.add_row(dataset, algorithm, length, point.aht, point.ehn)
    return table
