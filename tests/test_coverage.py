"""Tests for the coverage-target extension (future-work problem 3)."""

import pytest

from repro.errors import ParameterError
from repro.graphs.generators import complete_graph, star_graph
from repro.metrics.evaluation import expected_hit_nodes
from repro.core.coverage import (
    min_targets_for_coverage,
    min_targets_for_coverage_exact,
)


class TestFastCoverage:
    def test_alpha_zero_selects_nothing(self, small_power_law):
        result = min_targets_for_coverage(
            small_power_law, 0.0, 4, num_replicates=20, seed=1
        )
        assert result.selected == ()

    def test_star_needs_one_node(self):
        g = star_graph(9)
        result = min_targets_for_coverage(g, 0.99, 2, num_replicates=50, seed=2)
        assert result.selected == (0,)

    def test_threshold_reached(self, small_power_law):
        alpha = 0.6
        result = min_targets_for_coverage(
            small_power_law, alpha, 5, num_replicates=100, seed=3
        )
        achieved = expected_hit_nodes(small_power_law, result.selected, 5)
        # Estimated coverage met the threshold; the exact value should be in
        # the same neighbourhood.
        assert achieved >= alpha * small_power_law.num_nodes * 0.85

    def test_greedy_is_frugal(self, small_power_law):
        # Needing more coverage can never need fewer nodes.
        low = min_targets_for_coverage(
            small_power_law, 0.3, 5, num_replicates=60, seed=4
        )
        high = min_targets_for_coverage(
            small_power_law, 0.8, 5, num_replicates=60, seed=4
        )
        assert len(high.selected) >= len(low.selected)

    def test_max_size_cap_with_reachable_target(self, small_power_law):
        result = min_targets_for_coverage(
            small_power_law, 0.3, 5, num_replicates=60, seed=5, max_size=30
        )
        assert len(result.selected) <= 30

    def test_unreachable_target_raises(self, small_power_law):
        # Regression: alpha * n beyond what max_size selections can cover
        # used to return an under-covering set silently.
        with pytest.raises(ParameterError, match="unreachable"):
            min_targets_for_coverage(
                small_power_law, 1.0, 1, num_replicates=10, seed=5, max_size=3
            )

    def test_mismatched_index_rejected(self, small_power_law):
        # Regression: an index for a different graph used to drive the
        # greedy into nonsense (wrong candidate universe) instead of
        # failing loudly.
        from repro.graphs.generators import power_law_graph
        from repro.walks.index import FlatWalkIndex

        other = power_law_graph(20, 60, seed=3)
        index = FlatWalkIndex.build(other, 3, 5, seed=4)
        with pytest.raises(ParameterError, match="different graph"):
            min_targets_for_coverage(small_power_law, 0.5, 3, index=index)

    def test_bitset_backend_matches_entries(self, small_power_law):
        from repro.walks.index import FlatWalkIndex

        index = FlatWalkIndex.build(small_power_law, 5, 40, seed=9)
        entries = min_targets_for_coverage(
            small_power_law, 0.6, 5, index=index
        )
        bitset = min_targets_for_coverage(
            small_power_law, 0.6, 5, index=index, gain_backend="bitset"
        )
        assert entries.selected == bitset.selected
        assert entries.gains == bitset.gains
        assert (entries.params["achieved_estimate"]
                == bitset.params["achieved_estimate"])

    def test_alpha_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            min_targets_for_coverage(small_power_law, 1.5, 3)

    def test_params_recorded(self, small_power_law):
        result = min_targets_for_coverage(
            small_power_law, 0.5, 4, num_replicates=30, seed=6
        )
        assert result.params["alpha"] == 0.5
        assert result.params["achieved_estimate"] > 0


class TestExactCoverage:
    def test_complete_graph_single_node(self):
        # In K_6 with L=3 one target dominates ~1 + 5(1-(4/5)^3) > 3 nodes.
        g = complete_graph(6)
        result = min_targets_for_coverage_exact(g, 0.5, 3)
        assert len(result.selected) == 1

    def test_agrees_with_fast_on_small_graph(self, small_power_law):
        exact = min_targets_for_coverage_exact(small_power_law, 0.5, 4)
        fast = min_targets_for_coverage(
            small_power_law, 0.5, 4, num_replicates=300, seed=7
        )
        assert abs(len(exact.selected) - len(fast.selected)) <= 1

    def test_threshold_met_exactly(self, small_power_law):
        alpha = 0.55
        result = min_targets_for_coverage_exact(small_power_law, alpha, 4)
        value = expected_hit_nodes(small_power_law, result.selected, 4)
        assert value >= alpha * small_power_law.num_nodes - 1e-9

    def test_alpha_validated(self, small_power_law):
        with pytest.raises(ParameterError):
            min_targets_for_coverage_exact(small_power_law, -0.1, 3)

    def test_unreachable_target_raises(self, small_power_law):
        with pytest.raises(ParameterError, match="unreachable"):
            min_targets_for_coverage_exact(
                small_power_law, 0.9, 2, max_size=1
            )
