"""Stochastic greedy and its interaction with objectives and engines."""

import pytest

import repro
from repro.core.objectives import F1Objective, F2Objective
from repro.core.greedy import greedy_select
from repro.core.stochastic import (
    sample_size_per_round,
    stochastic_approx_greedy,
    stochastic_greedy_select,
)
from repro.errors import ParameterError
from repro.graphs.generators import power_law_graph, ring_graph, star_graph
from repro.walks.index import FlatWalkIndex


class TestSampleSize:
    def test_formula(self):
        # ceil((100 / 10) * ln(10)) = ceil(23.02...) = 24
        assert sample_size_per_round(100, 10, 0.1) == 24

    def test_clamped_to_pool(self):
        assert sample_size_per_round(5, 1, 0.01) == 5

    def test_at_least_one(self):
        assert sample_size_per_round(100, 100, 0.9) >= 1

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ParameterError):
            sample_size_per_round(10, 2, 0.0)
        with pytest.raises(ParameterError):
            sample_size_per_round(10, 2, 1.0)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            sample_size_per_round(10, 0, 0.1)

    def test_rejects_empty_pool(self):
        with pytest.raises(ParameterError):
            sample_size_per_round(0, 1, 0.1)


class TestStochasticGreedySelect:
    def test_selects_k_distinct(self):
        graph = power_law_graph(40, 120, seed=1)
        objective = F2Objective(graph, length=4)
        result = stochastic_greedy_select(objective, 5, seed=7)
        assert len(result.selected) == 5
        assert len(set(result.selected)) == 5

    def test_k_zero(self):
        graph = ring_graph(6)
        result = stochastic_greedy_select(F1Objective(graph, 3), 0, seed=1)
        assert result.selected == ()

    def test_rejects_bad_k(self):
        graph = ring_graph(6)
        with pytest.raises(ParameterError):
            stochastic_greedy_select(F1Objective(graph, 3), 7)

    def test_deterministic_under_seed(self):
        graph = power_law_graph(40, 120, seed=1)
        objective = F1Objective(graph, length=4)
        a = stochastic_greedy_select(objective, 4, seed=42)
        b = stochastic_greedy_select(objective, 4, seed=42)
        assert a.selected == b.selected

    def test_fewer_evaluations_than_full_greedy(self):
        graph = power_law_graph(60, 180, seed=2)
        objective = F2Objective(graph, length=4)
        stochastic = stochastic_greedy_select(objective, 10, seed=5)
        full = greedy_select(objective, 10, lazy=False)
        assert stochastic.num_gain_evaluations < full.num_gain_evaluations

    def test_epsilon_one_samples_whole_pool(self):
        """With tiny epsilon the sample covers the pool -> matches greedy."""
        graph = power_law_graph(25, 70, seed=3)
        objective = F2Objective(graph, length=4)
        stochastic = stochastic_greedy_select(
            objective, 4, epsilon=1e-9, seed=11
        )
        exact = greedy_select(objective, 4, lazy=False)
        assert stochastic.selected == exact.selected

    def test_quality_close_to_greedy(self):
        """Stochastic greedy should land within a few percent of greedy."""
        graph = power_law_graph(80, 240, seed=4)
        objective = F2Objective(graph, length=5)
        exact = greedy_select(objective, 8, lazy=True)
        stochastic = stochastic_greedy_select(objective, 8, seed=23)
        assert objective.value(stochastic.selected) >= 0.8 * objective.value(
            exact.selected
        )

    def test_result_params(self):
        graph = ring_graph(10)
        result = stochastic_greedy_select(
            F1Objective(graph, 3), 2, epsilon=0.2, seed=1
        )
        assert result.params["epsilon"] == 0.2
        assert result.params["strategy"] == "stochastic"


class TestStochasticApproxGreedy:
    def test_basic_run(self):
        graph = power_law_graph(100, 300, seed=6)
        result = stochastic_approx_greedy(
            graph, 6, 5, num_replicates=20, objective="f2", seed=9
        )
        assert result.algorithm == "StochasticApproxF2"
        assert len(result.selected) == 6

    def test_f1_name(self):
        graph = ring_graph(12)
        result = stochastic_approx_greedy(
            graph, 2, 3, num_replicates=5, objective="f1", seed=2
        )
        assert result.algorithm == "StochasticApproxF1"

    def test_rejects_bad_k(self):
        graph = ring_graph(6)
        with pytest.raises(ParameterError):
            stochastic_approx_greedy(graph, 7, 3)

    def test_reuses_index(self):
        graph = ring_graph(15)
        index = FlatWalkIndex.build(graph, 3, 10, seed=3)
        a = stochastic_approx_greedy(graph, 3, 3, index=index, seed=8)
        b = stochastic_approx_greedy(graph, 3, 3, index=index, seed=8)
        assert a.selected == b.selected

    def test_index_mismatch(self):
        index = FlatWalkIndex.build(ring_graph(15), 3, 5, seed=3)
        with pytest.raises(ParameterError):
            stochastic_approx_greedy(ring_graph(10), 2, 3, index=index)

    def test_star_center_found(self):
        """Even a sampled round should find the star center: its gain
        dominates every leaf so any sample containing it selects it, and
        with epsilon=1e-9 the sample is the whole pool."""
        graph = star_graph(30)
        result = stochastic_approx_greedy(
            graph, 1, 3, num_replicates=30, objective="f2",
            epsilon=1e-9, seed=13,
        )
        assert result.selected[0] == 0

    def test_exposed_at_top_level(self):
        assert repro.stochastic_approx_greedy is stochastic_approx_greedy
        assert repro.stochastic_greedy_select is stochastic_greedy_select
