"""Hoeffding sample-size bounds — Lemmas 3.3 and 3.4.

The paper bounds the number of walks ``R`` needed for the Algorithm 2
estimators to be within a relative additive error with high probability:

* Lemma 3.3 (``F1``):  ``R >= 1/(2 eps^2) ln((n - |S|) / delta)`` gives
  ``Pr[|F1hat - F1| >= eps (n - |S|) L] <= delta``.
* Lemma 3.4 (``F2``):  ``R >= 1/(2 eps^2) ln(n / delta)`` gives
  ``Pr[|F2hat - F2| >= eps n] <= delta``.

Besides the forward bounds this module exposes the inversions used when a
caller fixes ``R`` and wants to know the accuracy they bought.
"""

from __future__ import annotations

import math

from repro.errors import ParameterError

__all__ = [
    "sample_size_f1",
    "sample_size_f2",
    "epsilon_for_sample_size",
    "delta_for_sample_size",
    "hoeffding_tail",
]


def _check_eps_delta(epsilon: float, delta: float) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ParameterError("epsilon must lie in (0, 1)")
    if not 0.0 < delta < 1.0:
        raise ParameterError("delta must lie in (0, 1)")


def sample_size_f1(
    num_nodes: int, set_size: int, epsilon: float, delta: float
) -> int:
    """Smallest integer ``R`` satisfying Lemma 3.3."""
    _check_eps_delta(epsilon, delta)
    if set_size < 0 or set_size >= num_nodes:
        raise ParameterError("need 0 <= |S| < n for the F1 bound")
    return math.ceil(math.log((num_nodes - set_size) / delta) / (2 * epsilon**2))


def sample_size_f2(num_nodes: int, epsilon: float, delta: float) -> int:
    """Smallest integer ``R`` satisfying Lemma 3.4."""
    _check_eps_delta(epsilon, delta)
    if num_nodes < 1:
        raise ParameterError("num_nodes must be >= 1")
    return math.ceil(math.log(num_nodes / delta) / (2 * epsilon**2))


def epsilon_for_sample_size(num_nodes: int, sample_size: int, delta: float) -> float:
    """Additive-error level ``eps`` bought by ``R`` walks (Lemma 3.4 form).

    Inverts ``R = ln(n / delta) / (2 eps^2)``.
    """
    if sample_size < 1:
        raise ParameterError("sample_size must be >= 1")
    if not 0.0 < delta < 1.0:
        raise ParameterError("delta must lie in (0, 1)")
    if num_nodes < 1:
        raise ParameterError("num_nodes must be >= 1")
    return math.sqrt(math.log(num_nodes / delta) / (2 * sample_size))


def delta_for_sample_size(num_nodes: int, sample_size: int, epsilon: float) -> float:
    """Failure probability bought by ``R`` walks at accuracy ``eps``.

    ``delta = n exp(-2 eps^2 R)``, capped at 1.
    """
    if sample_size < 1:
        raise ParameterError("sample_size must be >= 1")
    if not 0.0 < epsilon < 1.0:
        raise ParameterError("epsilon must lie in (0, 1)")
    return min(1.0, num_nodes * math.exp(-2 * epsilon**2 * sample_size))


def hoeffding_tail(sample_size: int, epsilon: float) -> float:
    """Single-estimator tail ``Pr[|hhat - h| >= eps L] <= exp(-2 eps^2 R)``."""
    if sample_size < 1:
        raise ParameterError("sample_size must be >= 1")
    if epsilon <= 0:
        raise ParameterError("epsilon must be positive")
    return math.exp(-2 * epsilon**2 * sample_size)
