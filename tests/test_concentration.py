"""Empirical validation of the Hoeffding sample-size bounds (Lemmas 3.3/3.4).

The lemmas promise: with ``R >= log((n - |S|)/delta) / (2 eps^2)`` walks
per node, ``Pr[|F1_hat - F1| >= eps (n - |S|) L] <= delta`` (and the
analogue for F2).  These tests measure the deviation across many
independent estimator runs against the exact DP values and check the
violation rate.  Hoeffding is loose in practice, so a clean pass is
expected with large margin; a failure here means either the estimator or
the bound inversion regressed.
"""

import numpy as np
import pytest

from repro.graphs.generators import power_law_graph
from repro.hitting.bounds import sample_size_f1, sample_size_f2
from repro.hitting.exact import hit_probability_vector, hitting_time_vector
from repro.walks.estimators import estimate_f1, estimate_f2

EPSILON = 0.1
DELTA = 0.1
TRIALS = 40


@pytest.fixture(scope="module")
def instance():
    graph = power_law_graph(40, 120, seed=5)
    targets = {0, 7, 19}
    length = 5
    return graph, targets, length


class TestF1Concentration:
    def test_bound_holds_empirically(self, instance):
        graph, targets, length = instance
        n_out = graph.num_nodes - len(targets)
        replicates = sample_size_f1(
            graph.num_nodes, len(targets), EPSILON, DELTA
        )
        exact = graph.num_nodes * length - float(
            hitting_time_vector(graph, targets, length).sum()
        )
        budget = EPSILON * n_out * length
        violations = 0
        for trial in range(TRIALS):
            estimate = estimate_f1(
                graph, targets, length, replicates, seed=1000 + trial
            )
            if abs(estimate - exact) >= budget:
                violations += 1
        assert violations / TRIALS <= DELTA

    def test_estimates_center_on_truth(self, instance):
        """Unbiasedness (Lemma 3.1): the mean estimate converges to F1."""
        graph, targets, length = instance
        exact = graph.num_nodes * length - float(
            hitting_time_vector(graph, targets, length).sum()
        )
        estimates = [
            estimate_f1(graph, targets, length, 50, seed=2000 + t)
            for t in range(TRIALS)
        ]
        margin = 0.02 * graph.num_nodes * length
        assert abs(np.mean(estimates) - exact) < margin


class TestF2Concentration:
    def test_bound_holds_empirically(self, instance):
        graph, targets, length = instance
        replicates = sample_size_f2(graph.num_nodes, EPSILON, DELTA)
        exact = float(hit_probability_vector(graph, targets, length).sum())
        budget = EPSILON * graph.num_nodes
        violations = 0
        for trial in range(TRIALS):
            estimate = estimate_f2(
                graph, targets, length, replicates, seed=3000 + trial
            )
            if abs(estimate - exact) >= budget:
                violations += 1
        assert violations / TRIALS <= DELTA

    def test_estimates_center_on_truth(self, instance):
        """Unbiasedness (Lemma 3.2)."""
        graph, targets, length = instance
        exact = float(hit_probability_vector(graph, targets, length).sum())
        estimates = [
            estimate_f2(graph, targets, length, 50, seed=4000 + t)
            for t in range(TRIALS)
        ]
        assert abs(np.mean(estimates) - exact) < 0.02 * graph.num_nodes

    def test_error_shrinks_with_r(self, instance):
        """Monte-Carlo 1/sqrt(R): quadrupling R should roughly halve the
        spread of the estimates."""
        graph, targets, length = instance
        exact = float(hit_probability_vector(graph, targets, length).sum())

        def spread(replicates: int) -> float:
            errors = [
                abs(
                    estimate_f2(
                        graph, targets, length, replicates, seed=5000 + t
                    )
                    - exact
                )
                for t in range(TRIALS)
            ]
            return float(np.mean(errors))

        loose = spread(8)
        tight = spread(128)
        assert tight < loose
