"""Closed-loop load generation against a :class:`DominationService`.

Workload files are plain text, one query per line (``#`` comments and
blank lines ignored)::

    select 25            # best-25 placement (ApproxF2 on the snapshot)
    select 25 f1         # same budget under the Problem-1 objective
    metrics 3,17,42      # sampled coverage/AHT of an explicit placement
    coverage 3,17,42     # covered fraction only
    min-targets 0.4      # smallest set reaching 40% expected coverage

:func:`run_load` replays a workload through ``num_clients`` *closed-loop*
clients — each issues one query, waits for the answer, then issues its
next, the arrival model of the paper's online scenarios — and reports
throughput, latency percentiles, and the service's batching/cache
counters.  Two transports share the harness: ``"inproc"`` calls the
service directly on client threads, ``"http"`` drives the same queries
through keep-alive connections to a
:class:`~repro.serve.http.DominationHttpServer` (one connection per
client), so the wire tax is directly measurable against the in-process
numbers.  The same harness drives ``repro serve`` and the gated
``benchmarks/bench_serving.py`` / ``benchmarks/bench_http_serving.py``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from http.client import HTTPConnection
from typing import TYPE_CHECKING, Sequence
from urllib.parse import urlsplit

import numpy as np

from repro.errors import ParameterError, RwdomError
from repro.serve.service import ServiceStats
from repro.serve.schemas import (
    CoverageRequest,
    MetricsRequest,
    MinTargetsRequest,
    SelectRequest,
    encode_request,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.service import DominationService

__all__ = [
    "WorkloadQuery",
    "parse_workload",
    "LoadReport",
    "run_load",
    "sample_percentile",
]

#: Transports :func:`run_load` understands.
TRANSPORTS = ("inproc", "http")


def sample_percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile under the small-sample rule.

    Latency percentiles here always return an *observed* sample — the
    smallest observed value that at least ``q`` percent of the sample
    does not exceed (numpy's ``method="higher"``).  Linear interpolation
    (numpy's default) is misleading on small samples: two latencies of
    1 ms and 100 ms would interpolate to a "p99" of 99 ms, implying 99 %
    of queries beat a number that half of them missed.  Under this rule
    a sample smaller than ``100 / (100 - q)`` observations (fewer than
    100 for p99) reports its maximum — an honest upper bound rather than
    a fabricated midpoint.
    """
    flat = np.asarray(list(values), dtype=float)
    if flat.size == 0:
        raise ParameterError("cannot take a percentile of an empty sample")
    return float(np.percentile(flat, q, method="higher"))


@dataclass(frozen=True)
class WorkloadQuery:
    """One parsed workload directive.

    ``kind`` is ``select``/``metrics``/``coverage``/``min-targets``;
    only the fields that kind uses are meaningful.  ``line`` is the
    1-based workload line for error context (0 when built
    programmatically).
    """

    kind: str
    k: int = 0
    objective: str = "f2"
    targets: tuple[int, ...] = ()
    fraction: float = 0.0
    line: int = 0

    def issue(self, service: "DominationService"):
        """Run this query synchronously against ``service``."""
        if self.kind == "select":
            return service.select(self.k, objective=self.objective)
        if self.kind == "metrics":
            return service.metrics(self.targets)
        if self.kind == "coverage":
            return service.coverage(self.targets)
        if self.kind == "min-targets":
            return service.min_targets(self.fraction)
        raise ParameterError(f"unknown workload query kind {self.kind!r}")

    def to_request(self):
        """This directive as its wire schema (:mod:`repro.serve.schemas`)."""
        if self.kind == "select":
            return SelectRequest(k=self.k, objective=self.objective)
        if self.kind == "metrics":
            return MetricsRequest(targets=self.targets)
        if self.kind == "coverage":
            return CoverageRequest(targets=self.targets)
        if self.kind == "min-targets":
            return MinTargetsRequest(fraction=self.fraction)
        raise ParameterError(f"unknown workload query kind {self.kind!r}")


def parse_workload(text: str) -> list[WorkloadQuery]:
    """Parse a workload file into :class:`WorkloadQuery` records.

    Malformed lines raise :class:`~repro.errors.ParameterError` with the
    offending line number (same discipline as
    :func:`repro.dynamic.churn.parse_trace`); range checks against the
    served graph happen at issue time, inside the service.
    """
    queries: list[WorkloadQuery] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        kind = parts[0].lower()
        try:
            if kind == "select" and len(parts) in (2, 3):
                objective = parts[2].lower() if len(parts) == 3 else "f2"
                if objective not in ("f1", "f2"):
                    raise ValueError
                queries.append(
                    WorkloadQuery(
                        kind="select", k=int(parts[1]),
                        objective=objective, line=lineno,
                    )
                )
            elif kind in ("metrics", "coverage") and len(parts) == 2:
                targets = tuple(
                    int(part) for part in parts[1].split(",") if part.strip()
                )
                queries.append(
                    WorkloadQuery(kind=kind, targets=targets, line=lineno)
                )
            elif kind == "min-targets" and len(parts) == 2:
                queries.append(
                    WorkloadQuery(
                        kind="min-targets", fraction=float(parts[1]),
                        line=lineno,
                    )
                )
            else:
                raise ValueError
        except ValueError:
            raise ParameterError(
                f"workload line {lineno}: cannot parse {raw!r} (expected "
                "'select K [f1|f2]', 'metrics U,V,...', "
                "'coverage U,V,...', or 'min-targets FRAC')"
            )
    return queries


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one closed-loop load run.

    ``throughput_qps`` counts every issued query (a rejection is still a
    served response); the latency fields describe *answered* queries
    only, so a fast-failing workload line cannot drag the percentiles
    toward its near-zero rejection time.  Percentiles follow the
    small-sample rule of :func:`sample_percentile` — they are always an
    observed latency, and with fewer than 100 answered queries the p99
    is the maximum.  A run in which *nothing* was answered raises
    :class:`~repro.errors.ParameterError` instead of reporting
    meaningless numbers.  ``errors`` counts library-rejected queries
    (typed 4xx over HTTP); ``rejections`` counts backpressure 503s from
    the HTTP tier (always 0 in-process).

    Over ``transport="http"`` the client-side aggregates above are
    joined by ``endpoints``: the server's own per-endpoint taxonomy from
    ``/stats`` (requests, errors broken down by status in
    ``errors_by_status``, rejections, latency percentiles), captured
    after the run drains — so server-side error detail is no longer
    collapsed into the single client-side ``errors`` count.  In-process
    runs have no server; ``endpoints`` is ``None`` there.
    """

    num_queries: int
    num_clients: int
    elapsed_seconds: float
    throughput_qps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p99_ms: float
    errors: int
    rejections: int
    stats: ServiceStats
    endpoints: "dict[str, dict] | None" = None


class _Rejected(Exception):
    """A backpressure 503 from the HTTP tier (internal sentinel)."""


class _HttpClient:
    """One keep-alive connection issuing schema-encoded queries."""

    def __init__(self, base_url: str, timeout: float = 60.0):
        parts = urlsplit(base_url)
        if parts.scheme != "http" or not parts.hostname:
            raise ParameterError(
                f"base_url must look like http://host:port, got {base_url!r}"
            )
        self._conn = HTTPConnection(
            parts.hostname, parts.port or 80, timeout=timeout
        )

    def request(self, method: str, path: str, payload: "dict | None" = None):
        """``(status, decoded JSON body)`` for one round trip."""
        body = None if payload is None else json.dumps(payload)
        headers = {} if body is None else {"Content-Type": "application/json"}
        self._conn.request(method, path, body=body, headers=headers)
        response = self._conn.getresponse()
        data = response.read()
        return response.status, json.loads(data.decode("utf-8"))

    def issue(self, query: WorkloadQuery):
        """Issue one workload query; raise like the in-process path.

        Typed 4xx errors come back as
        :class:`~repro.errors.ParameterError` (mirroring the service's
        own rejections), backpressure 503s as the internal rejection
        sentinel, and anything else — a 500, a non-JSON body — as a hard
        failure that aborts the run.
        """
        kind, payload = encode_request(query.to_request())
        status, answer = self.request("POST", f"/query/{kind}", payload)
        if status == 200:
            return answer
        message = answer.get("error", {}).get("message", str(answer))
        if status == 503:
            raise _Rejected(message)
        if 400 <= status < 500:
            raise ParameterError(f"HTTP {status}: {message}")
        raise RuntimeError(f"HTTP {status} from /query/{kind}: {message}")

    def close(self) -> None:
        self._conn.close()


def _fetch_stats_payload(base_url: str) -> dict:
    client = _HttpClient(base_url)
    try:
        status, payload = client.request("GET", "/stats")
    finally:
        client.close()
    if status != 200:
        raise RuntimeError(f"GET /stats returned HTTP {status}")
    return payload


def _fetch_service_stats(base_url: str) -> ServiceStats:
    return ServiceStats(**_fetch_stats_payload(base_url)["service"])


def run_load(
    service: "DominationService | None",
    queries: Sequence[WorkloadQuery],
    num_clients: int = 4,
    repeat: int = 1,
    transport: str = "inproc",
    base_url: "str | None" = None,
) -> LoadReport:
    """Drive ``queries`` through closed-loop clients; measure the service.

    The stream is the workload repeated ``repeat`` times, dealt
    round-robin to ``num_clients`` threads that all start on a barrier.
    Per-query latency is wall-clock from issue to answer on the client
    thread — batching shows up as slightly higher latency (the window)
    traded for much higher throughput.

    ``transport="inproc"`` (the default) calls ``service`` directly;
    ``transport="http"`` issues the same queries over keep-alive
    connections to ``base_url`` (a running
    :class:`~repro.serve.http.DominationHttpServer`), one connection per
    client.  Over HTTP, ``service`` may be ``None`` — the report's
    service counters are then fetched from the server's ``/stats``
    endpoint after the run drains.

    Library-level query failures (:class:`~repro.errors.RwdomError`
    in-process, typed 4xx responses over HTTP) are counted in
    ``errors``, and backpressure 503s in ``rejections``, not raised —
    one bad workload line must not tear down a load run.  Anything else
    (a genuine bug, a 500, a resource failure) aborts the client and
    re-raises after the run drains, rather than being silently
    swallowed into a plausible-looking report.
    """
    if num_clients < 1:
        raise ParameterError("num_clients must be >= 1")
    if repeat < 1:
        raise ParameterError("repeat must be >= 1")
    if transport not in TRANSPORTS:
        raise ParameterError(
            f"transport must be one of {TRANSPORTS}, got {transport!r}"
        )
    if transport == "http" and not base_url:
        raise ParameterError("transport='http' requires base_url")
    if transport == "inproc":
        if base_url is not None:
            raise ParameterError("base_url is only meaningful over http")
        if service is None:
            raise ParameterError("transport='inproc' requires a service")
    stream = list(queries) * repeat
    if not stream:
        raise ParameterError("the workload contains no queries")
    num_clients = min(num_clients, len(stream))
    latencies: list[list[float]] = [[] for _ in range(num_clients)]
    errors = [0] * num_clients
    rejections = [0] * num_clients
    fatal: list[BaseException] = []
    barrier = threading.Barrier(num_clients + 1)

    def client(i: int) -> None:
        # Client setup must not skip the barrier — the run thread waits
        # on it, so a setup failure is recorded and the barrier still
        # crossed before bailing out.
        http_client = None
        try:
            if transport == "http":
                http_client = _HttpClient(base_url)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            fatal.append(exc)
            barrier.wait()
            return
        issue = (
            http_client.issue
            if http_client is not None
            else lambda query: query.issue(service)
        )
        try:
            barrier.wait()
            for query in stream[i::num_clients]:
                started = time.perf_counter()
                try:
                    issue(query)
                except _Rejected:
                    rejections[i] += 1
                except RwdomError:
                    errors[i] += 1
                except BaseException as exc:  # noqa: BLE001 - re-raised below
                    fatal.append(exc)
                    return
                else:
                    latencies[i].append(time.perf_counter() - started)
        finally:
            if http_client is not None:
                http_client.close()

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(num_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if fatal:
        raise fatal[0]
    flat = [lat for per in latencies for lat in per]
    if not flat:
        # Nothing was answered: there is no latency distribution, and a
        # report full of placeholder numbers would read as a healthy
        # run.  Fail loudly instead (regression-tested).
        raise ParameterError(
            f"no queries were answered: all {len(stream)} were rejected "
            f"({sum(errors)} errors, {sum(rejections)} backpressure 503s)"
        )
    endpoints = None
    if transport == "http":
        # One /stats read serves both: the service counters (when no
        # handle was passed) and the server-side per-endpoint error
        # taxonomy the client-side aggregates cannot see.
        payload = _fetch_stats_payload(base_url)
        endpoints = payload["endpoints"]
        stats = (
            service.stats
            if service is not None
            else ServiceStats(**payload["service"])
        )
    else:
        stats = service.stats
    return LoadReport(
        num_queries=len(stream),
        num_clients=num_clients,
        elapsed_seconds=elapsed,
        throughput_qps=len(stream) / elapsed if elapsed > 0 else float("inf"),
        latency_mean_ms=float(np.mean(flat)) * 1e3,
        latency_p50_ms=sample_percentile(flat, 50) * 1e3,
        latency_p99_ms=sample_percentile(flat, 99) * 1e3,
        errors=int(sum(errors)),
        rejections=int(sum(rejections)),
        stats=stats,
        endpoints=endpoints,
    )
