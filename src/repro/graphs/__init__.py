"""Graph substrate: storage, generators, IO, analysis, dataset registry."""

from repro.graphs.adjacency import Graph
from repro.graphs.builder import GraphBuilder
from repro.graphs.datasets import (
    TABLE2_DATASETS,
    DatasetSpec,
    dataset_names,
    dataset_spec,
    load_dataset,
    paper_synthetic_graph,
    scalability_graph,
)
from repro.graphs.generators import (
    barabasi_albert_graph,
    chung_lu_graph,
    complete_graph,
    erdos_renyi_graph,
    grid_graph,
    paper_example_graph,
    path_graph,
    power_law_graph,
    ring_graph,
    star_graph,
    two_cluster_graph,
)
from repro.graphs.formats import (
    read_json_graph,
    read_metis,
    read_weighted_arcs,
    write_json_graph,
    write_metis,
    write_weighted_arcs,
)
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.random_models import (
    configuration_model_graph,
    forest_fire_graph,
    random_regular_graph,
    watts_strogatz_graph,
)
from repro.graphs.weighted import WeightedDiGraph
from repro.graphs.properties import (
    DegreeSummary,
    bfs_distances,
    connected_components,
    degeneracy_order,
    degree_summary,
    density,
    eccentricity,
    is_connected,
    largest_component,
)

__all__ = [
    "Graph",
    "WeightedDiGraph",
    "GraphBuilder",
    "DatasetSpec",
    "TABLE2_DATASETS",
    "dataset_names",
    "dataset_spec",
    "load_dataset",
    "paper_synthetic_graph",
    "scalability_graph",
    "barabasi_albert_graph",
    "chung_lu_graph",
    "complete_graph",
    "erdos_renyi_graph",
    "grid_graph",
    "paper_example_graph",
    "path_graph",
    "power_law_graph",
    "ring_graph",
    "star_graph",
    "two_cluster_graph",
    "read_edge_list",
    "write_edge_list",
    "read_json_graph",
    "read_metis",
    "read_weighted_arcs",
    "write_json_graph",
    "write_metis",
    "write_weighted_arcs",
    "configuration_model_graph",
    "forest_fire_graph",
    "random_regular_graph",
    "watts_strogatz_graph",
    "DegreeSummary",
    "bfs_distances",
    "connected_components",
    "degeneracy_order",
    "degree_summary",
    "density",
    "eccentricity",
    "is_connected",
    "largest_component",
]
