"""Immutable index snapshots — the unit the serving layer publishes.

An :class:`IndexSnapshot` binds together everything a reader needs to
answer a query consistently: the graph, the walk index built on it, the
epoch (journal position for indexes maintained by
:class:`~repro.dynamic.index.DynamicWalkIndex`), and the graph's CSR
fingerprint.  Snapshots are frozen and their members are never mutated
after publication — the incremental maintenance path allocates fresh
entry arrays for every patch — so a reader holding one can keep
computing on it while newer epochs are published, and the
``(fingerprint, epoch)`` pair is a sound cache key for any answer
derived from it (DESIGN.md §10.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.index import FlatWalkIndex
from repro.walks.persistence import as_format, graph_fingerprint, load_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.dynamic.index import DynamicWalkIndex

__all__ = ["IndexSnapshot"]


@dataclass(frozen=True)
class IndexSnapshot:
    """One immutable ``(graph, index, epoch, fingerprint)`` quadruple."""

    graph: Graph
    index: FlatWalkIndex
    epoch: int
    fingerprint: int

    @classmethod
    def capture(
        cls, graph: Graph, index: FlatWalkIndex, epoch: int = 0
    ) -> "IndexSnapshot":
        """Snapshot a graph/index pair, fingerprinting the graph."""
        if index.num_nodes != graph.num_nodes:
            raise ParameterError(
                f"index was built for {index.num_nodes} nodes but the "
                f"graph has {graph.num_nodes}"
            )
        return cls(
            graph=graph,
            index=index,
            epoch=int(epoch),
            fingerprint=graph_fingerprint(graph),
        )

    @classmethod
    def of_dynamic(cls, dynamic_index: "DynamicWalkIndex") -> "IndexSnapshot":
        """Snapshot a maintained index at its current epoch.

        The returned snapshot references the index's *current* flat
        arrays; later :meth:`~repro.dynamic.index.DynamicWalkIndex.sync`
        calls replace those arrays rather than mutating them, so the
        snapshot stays valid (and stale, by epoch) after further churn.
        """
        return cls.capture(
            dynamic_index.graph, dynamic_index.flat, dynamic_index.epoch
        )

    @classmethod
    def load(
        cls,
        path: "str | Path",
        graph: Graph,
        index_format: "str | None" = None,
    ) -> "IndexSnapshot":
        """Load a persisted index as epoch-0 snapshot for ``graph``.

        Goes through :func:`repro.walks.persistence.load_index` with the
        graph attached, so a stale archive — node count, edge count, or
        CSR fingerprint mismatch — raises
        :class:`~repro.errors.ParameterError` instead of serving answers
        for a topology that no longer exists.

        ``index_format`` overrides the in-memory representation: by
        default the snapshot serves whatever the archive holds (an
        ``.idx3`` container stays memmapped, an ``.npz`` loads dense);
        passing ``"dense"``/``"compressed"``/``"mmap"`` converts via
        :func:`repro.walks.persistence.as_format` first.
        """
        index = load_index(path, graph=graph)
        if index_format is not None:
            index = as_format(index, index_format, graph=graph)
        return cls.capture(graph, index)

    @property
    def num_nodes(self) -> int:
        return self.graph.num_nodes

    @property
    def length(self) -> int:
        return self.index.length

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexSnapshot(n={self.num_nodes}, L={self.length}, "
            f"R={self.index.num_replicates}, epoch={self.epoch}, "
            f"fingerprint={self.fingerprint:#x})"
        )
