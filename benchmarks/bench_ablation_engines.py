"""Ablation: paper-faithful reference engine vs the vectorized engine.

Both implement Algorithm 6 on the same materialized walks; this bench
demonstrates that (a) they agree exactly, and (b) vectorization is what
makes the algorithm practical in Python — the reference engine plays the
role the O(k n^2 R L) sampling greedy plays in the paper's own comparison.
"""

from repro.experiments.reporting import ExperimentTable
from repro.graphs.generators import power_law_graph
from repro.walks.engine import batch_walks
from repro.walks.index import FlatWalkIndex, InvertedIndex, walker_major_starts
from repro.core.approx_fast import approx_greedy_fast
from repro.core.approx_greedy import approx_greedy


def run_ablation(config):
    graph = power_law_graph(1_000, 9_956, seed=config.seed)
    replicates, length, k = 25, 6, 30
    starts = walker_major_starts(graph.num_nodes, replicates)
    walks = batch_walks(graph, starts, length, seed=config.seed)
    ref_index = InvertedIndex.from_walks(walks, graph.num_nodes, replicates)
    flat_index = FlatWalkIndex.from_walks(walks, graph.num_nodes, replicates)
    table = ExperimentTable(
        title=f"Ablation: reference vs vectorized engine (n=1000, k={k}, R={replicates})",
        columns=("objective", "engine", "seconds"),
    )
    outcomes = {}
    for objective in ("f1", "f2"):
        ref = approx_greedy(graph, k, length, index=ref_index, objective=objective)
        fast = approx_greedy_fast(
            graph, k, length, index=flat_index, objective=objective
        )
        outcomes[objective] = (ref, fast)
        table.add_row(objective, "reference", ref.elapsed_seconds)
        table.add_row(objective, "vectorized", fast.elapsed_seconds)
    return table, outcomes


def test_engine_ablation(benchmark, config, report):
    table, outcomes = benchmark.pedantic(
        lambda: run_ablation(config), rounds=1, iterations=1
    )
    report(table, "ablation_engines.txt")
    for objective, (ref, fast) in outcomes.items():
        assert ref.selected == fast.selected, objective
        assert fast.elapsed_seconds < ref.elapsed_seconds
