"""Tests for the generic greedy kernel (Algorithm 1 + CELF)."""


import pytest

from repro.errors import ParameterError
from repro.core.greedy import greedy_select


class ModularObjective:
    """F(S) = sum of fixed weights: greedy must pick the top-k weights."""

    def __init__(self, weights):
        self.weights = list(weights)
        self.calls = 0

    @property
    def num_nodes(self):
        return len(self.weights)

    def value(self, targets):
        return sum(self.weights[u] for u in targets)

    def marginal_gain(self, targets, candidate):
        self.calls += 1
        return self.weights[candidate]


class CoverageObjective:
    """Weighted max-coverage: classic submodular benchmark with known greedy
    behaviour."""

    def __init__(self, sets, universe_size):
        self.sets = [frozenset(s) for s in sets]
        self.universe_size = universe_size

    @property
    def num_nodes(self):
        return len(self.sets)

    def value(self, targets):
        covered = set()
        for idx in targets:
            covered |= self.sets[idx]
        return float(len(covered))

    def marginal_gain(self, targets, candidate):
        covered = set()
        for idx in targets:
            covered |= self.sets[idx]
        return float(len(self.sets[candidate] - covered))


class TestModular:
    def test_picks_top_weights(self):
        objective = ModularObjective([5.0, 1.0, 9.0, 7.0, 3.0])
        result = greedy_select(objective, 3)
        assert set(result.selected) == {2, 3, 0}
        assert result.selected[0] == 2  # ordered by gain

    def test_gains_recorded(self):
        objective = ModularObjective([5.0, 1.0, 9.0])
        result = greedy_select(objective, 2)
        assert result.gains == (9.0, 5.0)

    def test_tie_breaks_to_lower_id(self):
        objective = ModularObjective([4.0, 4.0, 4.0])
        for lazy in (True, False):
            result = greedy_select(ModularObjective([4.0, 4.0, 4.0]), 2, lazy=lazy)
            assert result.selected == (0, 1)


class TestCoverage:
    SETS = [{0, 1, 2, 3}, {2, 3, 4}, {4, 5}, {0, 5}, {6}]

    def test_greedy_matches_manual(self):
        objective = CoverageObjective(self.SETS, 7)
        result = greedy_select(objective, 3, lazy=False)
        assert result.selected[0] == 0  # biggest set first
        # Greedy is within 1-1/e of optimal: optimum covers 7 with 3 sets.
        assert objective.value(result.selected) >= (1 - 1 / 2.71828) * 7

    def test_lazy_equals_full(self):
        full = greedy_select(CoverageObjective(self.SETS, 7), 4, lazy=False)
        lazy = greedy_select(CoverageObjective(self.SETS, 7), 4, lazy=True)
        assert full.selected == lazy.selected
        assert full.gains == lazy.gains

    def test_lazy_saves_evaluations(self):
        sets = [set(range(i, i + 12)) for i in range(0, 240, 3)]
        full_obj = CoverageObjective(sets, 260)
        lazy_obj = CoverageObjective(sets, 260)

        class Counting:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            @property
            def num_nodes(self):
                return self.inner.num_nodes

            def marginal_gain(self, targets, candidate):
                self.calls += 1
                return self.inner.marginal_gain(targets, candidate)

        full_counter = Counting(full_obj)
        lazy_counter = Counting(lazy_obj)
        greedy_select(full_counter, 10, lazy=False)
        greedy_select(lazy_counter, 10, lazy=True)
        assert lazy_counter.calls < full_counter.calls

    def test_evaluation_count_reported(self):
        objective = CoverageObjective(self.SETS, 7)
        result = greedy_select(objective, 2, lazy=False)
        assert result.num_gain_evaluations == 5 + 4


class TestCandidates:
    def test_restricted_pool(self):
        objective = ModularObjective([9.0, 8.0, 7.0, 6.0])
        result = greedy_select(objective, 2, candidates=[2, 3])
        assert set(result.selected) == {2, 3}

    def test_candidates_out_of_range(self):
        with pytest.raises(ParameterError):
            greedy_select(ModularObjective([1.0]), 1, candidates=[5])

    def test_k_exceeds_pool(self):
        with pytest.raises(ParameterError):
            greedy_select(ModularObjective([1.0, 2.0]), 2, candidates=[0])


class TestValidation:
    def test_k_zero(self):
        result = greedy_select(ModularObjective([1.0, 2.0]), 0)
        assert result.selected == ()

    def test_k_negative(self):
        with pytest.raises(ParameterError):
            greedy_select(ModularObjective([1.0]), -1)

    def test_k_too_large(self):
        with pytest.raises(ParameterError):
            greedy_select(ModularObjective([1.0]), 2)

    def test_algorithm_name_stamped(self):
        result = greedy_select(ModularObjective([1.0]), 1, algorithm_name="X")
        assert result.algorithm == "X"
