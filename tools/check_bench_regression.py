#!/usr/bin/env python
"""Benchmark regression gate (run by the CI ``bench-regression`` job).

Compares a fresh ``--json`` benchmark report (``BENCH_<sha>.json``) against
the committed ``benchmarks/baselines.json``:

* ``*_parity`` keys are **hard gates** — any False (in the current report)
  fails regardless of flags.
* ``*_s`` keys are timings (lower is better): fail when
  ``current > factor * baseline`` (default factor 2.0 — the deliberately
  generous "soft" timing gate for shared runners).
* ``*_x`` keys are speedup ratios (higher is better, machine-independent):
  fail when ``current < baseline / factor``.
* ``--soft-absolute`` demotes just the absolute ``*_s`` comparisons to
  warnings — what CI uses: wall-clock baselines recorded on one machine
  do not transfer to shared runners, but the speedup ratios and parity
  verdicts do, and those still gate hard.
* ``--soft-timing`` demotes all timing comparisons (``*_s`` and ``*_x``)
  to warnings; parity stays hard.

Keys present in only one of the two files are reported but never fail the
run, so adding a benchmark does not require a lock-step baseline update.

Usage::

    python tools/check_bench_regression.py CURRENT.json \
        [benchmarks/baselines.json] [--factor 2.0] [--soft-timing]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines.json"


def load_measurements(path: Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    if "measurements" not in payload:
        raise SystemExit(f"{path}: not a benchmark report (no 'measurements')")
    return payload["measurements"]


def compare(
    current: dict, baseline: dict, factor: float
) -> tuple[list[str], list[str], list[str], list[str]]:
    """Returns (parity_failures, absolute_failures, ratio_failures, notes)."""
    parity_failures: list[str] = []
    absolute_failures: list[str] = []
    ratio_failures: list[str] = []
    notes: list[str] = []

    for key in sorted(current):
        value = current[key]
        if key.endswith("_parity"):
            if value is not True:
                parity_failures.append(f"{key}: parity violated (got {value!r})")
            continue
        if key not in baseline:
            notes.append(f"{key}: no committed baseline (current {value})")
            continue
        base = baseline[key]
        if key.endswith("_s"):
            if value > factor * base:
                absolute_failures.append(
                    f"{key}: {value:.6g}s vs baseline {base:.6g}s "
                    f"(> {factor:g}x slowdown)"
                )
        elif key.endswith("_x"):
            if value < base / factor:
                ratio_failures.append(
                    f"{key}: speedup {value:.3g}x vs baseline {base:.3g}x "
                    f"(> {factor:g}x degradation)"
                )
    for key in sorted(set(baseline) - set(current)):
        notes.append(f"{key}: in baseline but missing from current run")
    return parity_failures, absolute_failures, ratio_failures, notes


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh --json report")
    parser.add_argument(
        "baseline", type=Path, nargs="?", default=DEFAULT_BASELINE,
        help=f"committed baseline (default {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--factor", type=float, default=2.0,
        help="allowed slowdown factor for timing keys (default 2.0)",
    )
    parser.add_argument(
        "--soft-absolute", action="store_true",
        help="report absolute *_s regressions without failing (speedup "
        "ratios and parity still gate) — recommended on shared runners",
    )
    parser.add_argument(
        "--soft-timing", action="store_true",
        help="report all timing regressions without failing (parity stays "
        "hard)",
    )
    args = parser.parse_args(argv)

    current = load_measurements(args.current)
    baseline = load_measurements(args.baseline)
    parity_failures, absolute_failures, ratio_failures, notes = compare(
        current, baseline, args.factor
    )

    soft_absolute = args.soft_timing or args.soft_absolute
    for note in notes:
        print(f"note: {note}")
    for failure in absolute_failures:
        print(f"{'warning' if soft_absolute else 'FAIL'}: {failure}")
    for failure in ratio_failures:
        print(f"{'warning' if args.soft_timing else 'FAIL'}: {failure}")
    for failure in parity_failures:
        print(f"FAIL: {failure}")

    failed = bool(parity_failures) or (
        bool(absolute_failures) and not soft_absolute
    ) or (bool(ratio_failures) and not args.soft_timing)
    if failed:
        print("benchmark regression check failed", file=sys.stderr)
        return 1
    print(
        f"benchmark regression check passed "
        f"({len(current)} measurements, factor {args.factor:g})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
