"""Robust selection and bondage-style attacks (DESIGN.md §9.3).

"Robust Domination in Random Graphs" (Ganesan 2023) asks whether a
dominating set survives edge deletions; the bondage number literature
(Mitsche et al.) asks how *few* deletions an adversary needs to break
one.  This module poses both questions against the sampled-walk world of
the paper: the materialized trajectories of a
:class:`~repro.dynamic.index.DynamicWalkIndex` are held fixed, and each
covered state carries a *certificate* — the edge sequence its walk
traverses up to the first visit of the target set.  Deleting any
certificate edge invalidates that state's coverage.

This sample-fixed semantics is deliberately conservative-by-construction
on the attack side (a real walker would re-route around a deleted edge,
so certified damage over-estimates true damage — it measures the attack
*surface*) and it makes both directions tractable:

* :func:`min_breaking_edges` is the greedy bondage adversary: repeatedly
  delete the edge that invalidates the most surviving certificates until
  coverage falls below a threshold.
* :func:`robust_greedy` selects a target set by minimax alternation: each
  round it recomputes the greedy adversary's best ``q`` edges against the
  current selection, then scores candidates by their *robust* marginal
  gain — newly covered states whose certificates avoid those ``q`` edges.
  With ``q = 0`` it degenerates exactly (bit-for-bit, same tie-breaks) to
  the sampled ``ApproxF2`` greedy of Algorithm 6.

Hop-0 self coverage (the walker itself is selected) uses no edges and is
therefore unbreakable under any ``q`` — matching the intuition that a
replica placed *on* a peer survives any amount of link churn.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.graphs.adjacency import Graph
from repro.core.result import SelectionResult
from repro.walks.backends import WalkEngine
from repro.walks.engine import batch_first_hits
from repro.dynamic.index import DynamicWalkIndex, _states_of_rows

__all__ = ["robust_greedy", "min_breaking_edges", "BreakingReport"]


def _walk_step_keys(walks: np.ndarray, num_nodes: int) -> np.ndarray:
    """Canonical undirected edge key of every walk step, ``(B, L)``.

    Step ``t`` of row ``b`` is the move ``walks[b, t] -> walks[b, t + 1]``;
    its key is ``min * n + max``.  Stay-put steps (dangling nodes) use no
    edge and get the sentinel ``-1`` — they can never be attacked.
    """
    a = walks[:, :-1].astype(np.int64)
    b = walks[:, 1:].astype(np.int64)
    keys = np.minimum(a, b) * num_nodes + np.maximum(a, b)
    keys[a == b] = -1
    return keys


def _certificate_pairs(
    step_keys: np.ndarray, first: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated ``(row, edge_key)`` incidence of coverage certificates.

    ``first[b]`` is row ``b``'s first-hit hop (``< 0`` for uncovered rows);
    its certificate is steps ``0 .. first[b] - 1``.  Hop-0 coverage has an
    empty certificate and simply contributes no pairs.
    """
    lengths = np.where(first > 0, first, 0).astype(np.int64)
    total = int(lengths.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    rows = np.repeat(np.arange(first.size, dtype=np.int64), lengths)
    base = np.repeat(np.cumsum(lengths) - lengths, lengths)
    steps = np.arange(total, dtype=np.int64) - base
    keys = step_keys[rows, steps]
    valid = keys >= 0
    rows, keys = rows[valid], keys[valid]
    if rows.size == 0:
        return rows, keys
    # Dedup (row, key): a walk may traverse an edge twice; one deletion
    # still kills the certificate exactly once.
    unique_keys, key_idx = np.unique(keys, return_inverse=True)
    pair_id = rows * unique_keys.size + key_idx
    _, keep = np.unique(pair_id, return_index=True)
    return rows[keep], keys[keep]


class _GreedyAttack:
    """Greedy certificate-killing adversary over a fixed incidence."""

    def __init__(self, step_keys: np.ndarray, first: np.ndarray):
        rows, keys = _certificate_pairs(step_keys, first)
        self.unique_keys, self.key_idx = (
            np.unique(keys, return_inverse=True)
            if keys.size
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        self.pair_rows = rows
        self.alive_pairs = np.ones(rows.size, dtype=bool)
        self.dead_rows = np.zeros(first.size, dtype=bool)

    def next_edge(self) -> "tuple[int, np.ndarray] | None":
        """Pick the edge killing the most surviving certificates.

        Returns ``(edge_key, newly_killed_rows)`` or ``None`` when no
        certificate remains attackable.
        """
        if not self.alive_pairs.any():
            return None
        counts = np.bincount(
            self.key_idx[self.alive_pairs], minlength=self.unique_keys.size
        )
        best = int(counts.argmax())
        if counts[best] == 0:
            return None
        killed_mask = self.alive_pairs & (self.key_idx == best)
        killed_rows = np.unique(self.pair_rows[killed_mask])
        self.dead_rows[killed_rows] = True
        self.alive_pairs &= ~self.dead_rows[self.pair_rows]
        return int(self.unique_keys[best]), killed_rows


@dataclass(frozen=True)
class BreakingReport:
    """Outcome of a bondage-style attack (:func:`min_breaking_edges`).

    ``edges`` are the deleted edges in attack order;
    ``coverage_fractions[i]`` is the certified coverage fraction after
    deleting ``edges[: i + 1]``.  ``succeeded`` tells whether the final
    fraction fell below ``threshold``; when ``False``, the surviving
    coverage is unbreakable under this semantics (hop-0 self coverage, or
    ``max_edges`` exhausted).
    """

    edges: tuple[tuple[int, int], ...]
    coverage_fractions: tuple[float, ...]
    baseline_fraction: float
    threshold: float
    succeeded: bool
    num_states: int

    @property
    def num_edges(self) -> int:
        return len(self.edges)


def min_breaking_edges(
    graph: Graph,
    targets,
    length: int,
    num_replicates: int = 100,
    seed: "int | None" = None,
    engine: "str | WalkEngine | None" = None,
    threshold: float = 0.5,
    max_edges: "int | None" = None,
    index: "DynamicWalkIndex | None" = None,
) -> BreakingReport:
    """Greedy adversary: few edge deletions that break a placement.

    Deletes edges one at a time, always the edge lying on the most
    surviving coverage certificates, until the certified coverage
    fraction of ``targets`` drops below ``threshold`` (or ``max_edges``
    deletions, or nothing attackable remains).  Pass a prebuilt ``index``
    to reuse walks; otherwise one is materialized with
    :meth:`DynamicWalkIndex.build`.
    """
    if not 0.0 <= threshold <= 1.0:
        raise ParameterError("threshold must lie in [0, 1]")
    if max_edges is not None and max_edges < 0:
        raise ParameterError("max_edges must be >= 0")
    dyn = index if index is not None else DynamicWalkIndex.build(
        graph, length, num_replicates, seed=seed, engine=engine
    )
    if dyn.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    n = dyn.num_nodes
    mask = np.zeros(n, dtype=bool)
    target_list = [int(v) for v in targets]
    for v in target_list:
        if not 0 <= v < n:
            raise ParameterError(f"target {v} out of range")
    mask[target_list] = True
    first = batch_first_hits(dyn.walks, mask)
    total = dyn.walks.shape[0]
    covered = int((first >= 0).sum())
    baseline = covered / total if total else 0.0
    attack = _GreedyAttack(_walk_step_keys(dyn.walks, n), first)
    edges: list[tuple[int, int]] = []
    fractions: list[float] = []
    fraction = baseline
    budget = max_edges if max_edges is not None else total
    while fraction >= threshold and len(edges) < budget:
        step = attack.next_edge()
        if step is None:
            break
        key, killed = step
        covered -= int(killed.size)
        fraction = covered / total if total else 0.0
        edges.append((int(key // n), int(key % n)))
        fractions.append(fraction)
    return BreakingReport(
        edges=tuple(edges),
        coverage_fractions=tuple(fractions),
        baseline_fraction=baseline,
        threshold=threshold,
        succeeded=fraction < threshold,
        num_states=total,
    )


def robust_greedy(
    graph: Graph,
    k: int,
    length: int,
    q: int = 1,
    num_replicates: int = 100,
    seed: "int | None" = None,
    engine: "str | WalkEngine | None" = None,
    index: "DynamicWalkIndex | None" = None,
) -> SelectionResult:
    """Greedy selection under a ``q``-edge-deletion adversary.

    Minimax alternation on the sampled F2 objective: each round first
    lets the greedy adversary pick its best ``q`` edges against the
    current selection's certificates, then scores every candidate by the
    number of *robustly* newly covered states — uncovered states the
    candidate's walks first-visit via a certificate avoiding all ``q``
    adversary edges (plus the candidate's own unbreakable hop-0 states).
    ``q = 0`` reproduces the ``ApproxF2`` selection of Algorithm 6
    bit-for-bit (same gains, same tie-breaking).

    Gains are reported on the estimator scale (states / R), like
    :func:`~repro.core.approx_fast.approx_greedy_fast`.
    """
    if not 0 <= k <= graph.num_nodes:
        raise ParameterError(f"k={k} must lie in [0, n={graph.num_nodes}]")
    if q < 0:
        raise ParameterError("q must be >= 0")
    started = time.perf_counter()
    dyn = index if index is not None else DynamicWalkIndex.build(
        graph, length, num_replicates, seed=seed, engine=engine
    )
    if dyn.num_nodes != graph.num_nodes:
        raise ParameterError("index was built for a different graph size")
    n = dyn.num_nodes
    replicates = dyn.num_replicates
    num_states = dyn.num_states
    flat = dyn.flat
    infinity = dyn.length + 1
    state_of_row = _states_of_rows(
        np.arange(dyn.walks.shape[0]), n, replicates
    )
    step_keys = _walk_step_keys(dyn.walks, n)
    # First-hit hop of the current selection per state; `infinity` means
    # uncovered (entry hops never exceed L).
    cur_first = np.full(num_states, infinity, dtype=np.int64)
    chosen = np.zeros(n, dtype=bool)
    selected: list[int] = []
    gains_out: list[float] = []
    evaluations = 0
    for _ in range(k):
        # Adversary move: best q edges against the current certificates.
        safe_state = np.full(num_states, infinity, dtype=np.int64)
        if q > 0 and step_keys.size:
            row_first = cur_first[state_of_row]
            row_first = np.where(row_first <= dyn.length, row_first, -1)
            attack = _GreedyAttack(step_keys, row_first)
            adversary_keys = []
            for _round in range(q):
                step = attack.next_edge()
                if step is None:
                    break
                adversary_keys.append(step[0])
            if adversary_keys:
                bad = np.isin(step_keys, np.asarray(adversary_keys))
                hit_any = bad.any(axis=1)
                safe_rows = np.where(hit_any, bad.argmax(axis=1), infinity)
                safe_state[state_of_row] = safe_rows
        # Candidate scores: robust marginal gain, exact integer sums.
        uncovered = cur_first == infinity
        contrib = (
            uncovered[flat.state]
            & (flat.hop <= safe_state[flat.state])
        ).astype(np.int64)
        running = np.zeros(contrib.size + 1, dtype=np.int64)
        np.cumsum(contrib, out=running[1:])
        entry_gain = running[flat.indptr[1:]] - running[flat.indptr[:-1]]
        self_gain = (
            uncovered.reshape(replicates, n).sum(axis=0, dtype=np.int64)
        )
        gains = entry_gain + self_gain
        gains[chosen] = -1
        evaluations += n
        best = int(gains.argmax())
        # Fold in the factual (non-robust) coverage of the pick.
        self_states = np.arange(replicates, dtype=np.int64) * n + best
        cur_first[self_states] = 0
        entry_states, entry_hops = flat.entries_for(best)
        entry_states = entry_states.astype(np.int64)
        np.minimum.at(cur_first, entry_states, entry_hops.astype(np.int64))
        chosen[best] = True
        selected.append(best)
        gains_out.append(float(gains[best]) / replicates)
    return SelectionResult(
        algorithm="RobustGreedy",
        selected=tuple(selected),
        gains=tuple(gains_out),
        elapsed_seconds=time.perf_counter() - started,
        num_gain_evaluations=evaluations,
        params={
            "k": k,
            "L": dyn.length,
            "R": replicates,
            "q": q,
            "method": "robust-greedy",
            "objective": "f2",
            "engine": dyn.engine_name,
        },
    )
