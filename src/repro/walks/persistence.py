"""Walk-index persistence.

Building the inverted walk index (Algorithm 3) is the dominant cost of the
approximate greedy solvers; everything after it is sub-second.  Persisting
the index lets operational workflows — parameter sweeps over ``k``,
re-ranking after a business-rule change, the paper's own Figs. 6-7 protocol
of reading one greedy run at several budgets — pay that cost once.

Two archive families, both version-stamped and sniffed by magic bytes so
:func:`load_index` accepts either transparently:

* **v1/v2** — a single ``.npz`` (numpy archive): the three flat arrays
  plus a small integer header.  Version 2 adds provenance metadata
  (walk-engine name, seed material, gain-backend) and a fingerprint of
  the graph the index was built on, so :func:`load_index` can refuse a
  *stale* index — one whose graph has since been edited — instead of
  silently producing selections for a topology that no longer exists.
  Version-1 archives (no metadata) still load.
* **v3** (DESIGN.md §13) — a raw binary container built for
  ``np.memmap``: magic, a JSON header (same provenance as v2), then the
  arrays at 64-byte-aligned offsets, uncompressed.  Loading is
  O(metadata): every array comes back as a read-only memory map and
  pages in only when touched.  The ``encoding`` field selects what the
  arrays are — ``"dense"`` stores the flat entry arrays (optionally with
  the packed hit rows pre-built, so a served index never materializes
  them either) and loads as an mmap-backed index; ``"compressed"``
  stores the delta codec of :class:`~repro.walks.storage.CompressedStorage`.
  :func:`save_index` picks the family via ``format=`` (``"dense"`` → v2
  npz, ``"compressed"``/``"mmap"`` → v3), and :func:`as_format` converts
  a live index between the three storage backends in memory.

:func:`save_dynamic_index` / :func:`load_dynamic_index` persist the richer
:class:`~repro.dynamic.index.DynamicWalkIndex` as a *journal-aware
snapshot*: the graph CSR, the trajectories, the entry arrays, the seed
material, and the journal epoch.  A reloaded snapshot resumes incremental
maintenance exactly where it left off — ``sync`` against the owning
:class:`~repro.dynamic.graph.DynamicGraph` replays only the journal suffix
after the stored epoch (the frozen uniform stream is regenerated from the
seed material on first use, so snapshots stay small).
"""

from __future__ import annotations

import json
import os
import struct
import tempfile
import time
import zipfile
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.errors import GraphFormatError, ParameterError
from repro.graphs.adjacency import Graph
from repro.walks.index import FlatWalkIndex
from repro.walks.rows import (
    DEFAULT_ROW_CAP_BYTES,
    CompressedRows,
    validate_rows_format,
)
from repro.walks.storage import (
    INDEX_FORMATS,
    CompressedStorage,
    MmapStorage,
    validate_index_format,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.dynamic.index import DynamicWalkIndex

__all__ = [
    "save_index",
    "load_index",
    "as_format",
    "index_provenance",
    "graph_fingerprint",
    "save_dynamic_index",
    "load_dynamic_index",
    "INDEX_FORMATS",
]

_FORMAT_VERSION = 2
_READABLE_VERSIONS = (1, 2)
_DYNAMIC_FORMAT_VERSION = 1
_V3_VERSION = 3
#: v3 magic: 8 bytes, never a valid zip prefix, so one read disambiguates.
_V3_MAGIC = b"RWIDX3\x00\n"
#: Auto-included dense packed rows in a ``mmap``-format save stop at this
#: size — beyond it the archive stores roaring compressed rows instead
#: (``rows_format="dense"`` forces the matrix past it).  One shared
#: constant with the kernel-side budget
#: (:data:`repro.core.coverage_kernel.DEFAULT_MAX_PACKED_BYTES`), so the
#: save-side and kernel-side caps can never drift.
_DEFAULT_ROW_CAP = DEFAULT_ROW_CAP_BYTES


def _resolve_archive_path(
    path: "str | Path", default_suffix: str = ".npz"
) -> Path:
    """The path an index archive actually lives at.

    ``np.savez`` silently appends ``.npz`` to any filename that lacks it,
    so ``save_index(idx, "myindex")`` used to write ``myindex.npz`` while
    ``load_index("myindex")`` looked for the literal name and failed.
    Both sides now resolve identically: a literal path that already
    exists as a file is honored as-is (so a genuinely suffixless archive
    can be overwritten and re-read, never shadowed by a fresh
    suffixed sibling); otherwise ``default_suffix`` is appended when no
    known archive suffix is present (``.npz`` for the v2 family,
    ``.idx3`` for v3).  The atomic writer never hands the resolved name
    to numpy (the temp file carries the suffix), so no second
    normalization can sneak in.
    """
    path = Path(path)
    if path.suffix in (".npz", ".idx3") or path.is_file():
        return path
    return path.with_name(path.name + default_suffix)


def _resolve_load_path(path: "str | Path") -> Path:
    """Where :func:`load_index` should look for ``path``.

    A literal existing file or a known suffix wins; otherwise the
    ``.npz`` and ``.idx3`` suffixed siblings are probed in that order
    (``.npz`` first: the older convention, and deterministic when both
    exist).  When neither exists the ``.npz`` name is returned so the
    downstream error message points at the conventional location.
    """
    path = Path(path)
    if path.suffix in (".npz", ".idx3") or path.is_file():
        return path
    for suffix in (".npz", ".idx3"):
        candidate = path.with_name(path.name + suffix)
        if candidate.is_file():
            return candidate
    return path.with_name(path.name + ".npz")


def _sniff_is_v3(path: Path) -> bool:
    """Whether ``path`` holds a v3 container (vs a zip/npz archive).

    Reads the first 8 bytes; an unreadable or unrecognized file raises
    :class:`GraphFormatError` exactly like the npz loader would.
    """
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(_V3_MAGIC))
    except OSError as exc:
        raise GraphFormatError(f"{path}: unreadable index archive") from exc
    if magic == _V3_MAGIC:
        return True
    if magic[:2] == b"PK":
        return False
    raise GraphFormatError(
        f"{path}: unreadable index archive (unrecognized magic bytes)"
    )


def _atomic_savez(path: Path, payload: dict) -> None:
    """``np.savez_compressed`` through a same-directory temp + rename.

    Writing straight to the destination would truncate the previous good
    archive before the new one is complete, so a crash mid-write loses
    both.  The temp file keeps the ``.npz`` suffix (otherwise numpy would
    append one and the rename would miss it) and ``os.replace`` makes the
    swap atomic on POSIX — the snapshot-publish contract the serving
    layer (:mod:`repro.serve`) relies on.

    The temp file is created with mode ``0o666`` and the kernel applies
    the process umask (what a plain ``open()`` would have produced —
    ``tempfile.mkstemp``'s 0600 would make a maintenance job's archives
    unreadable by a separately-running serving process, and probing the
    umask via ``os.umask`` would briefly mutate process-global state
    under concurrent saver threads); overwrites then adopt the
    destination's existing mode.
    """
    tmp_name = _create_atomic_temp(path, ".npz")
    try:
        np.savez_compressed(tmp_name, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def _create_atomic_temp(path: Path, suffix: str) -> str:
    """A fresh same-directory temp sibling for an atomic write.

    Created empty with mode 0o666 under the process umask, then adopts
    the destination's existing mode on overwrite (the rationale in
    :func:`_atomic_savez`).  ``suffix`` must match what the actual
    writer will produce so the final ``os.replace`` renames the file the
    writer wrote (numpy appends suffixes silently).
    """
    tmp_name = None
    for attempt in range(100):
        candidate = path.with_name(
            f"{path.name}.tmp-{os.getpid()}-{attempt}{suffix}"
        )
        try:
            fd = os.open(
                candidate, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o666
            )
        except FileExistsError:  # pragma: no cover - concurrent saver
            continue
        os.close(fd)
        tmp_name = str(candidate)
        break
    if tmp_name is None:  # pragma: no cover - 100 stale temp files
        raise GraphFormatError(
            f"{path}: cannot create a temporary sibling for atomic save"
        )
    try:
        os.chmod(tmp_name, os.stat(path).st_mode & 0o777)
    except OSError:
        pass  # fresh destination: keep the umask-derived mode
    return tmp_name


def graph_fingerprint(graph: Graph) -> int:
    """CRC of the exact CSR arrays — changes on any edge edit.

    Cheap (one pass over the adjacency) and order-sensitive by
    construction: two graphs fingerprint equal iff their canonical CSR
    arrays are byte-identical, which for this package's builders means
    the graphs are equal.
    """
    crc = zlib.crc32(np.ascontiguousarray(graph.indptr).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(graph.indices).tobytes(), crc)
    return crc


def _check_graph_match(
    path: Path,
    graph: Graph,
    num_nodes: int,
    meta: "dict | None",
) -> None:
    """Raise :class:`ParameterError` when an index is stale for ``graph``."""
    if graph.num_nodes != num_nodes:
        raise ParameterError(
            f"{path}: index was built for {num_nodes} nodes but the graph "
            f"has {graph.num_nodes}"
        )
    if meta is None:
        return
    if meta["graph_num_edges"] != graph.num_edges:
        raise ParameterError(
            f"{path}: stale index — built on a graph with "
            f"{meta['graph_num_edges']} edges, this graph has "
            f"{graph.num_edges}; rebuild the index (or use "
            "repro.dynamic to maintain it incrementally)"
        )
    actual = graph_fingerprint(graph)
    if meta["graph_fingerprint"] != actual:
        raise ParameterError(
            f"{path}: stale index — this graph's adjacency fingerprint "
            f"{actual:#010x} does not match fingerprint "
            f"{meta['graph_fingerprint']:#010x} stored in the archive; "
            "the graph was edited after the index was built; rebuild the "
            "index (or use repro.dynamic to maintain it incrementally)"
        )


# ----------------------------------------------------------------------
# Persistence v3: raw aligned arrays behind a JSON header (DESIGN.md §13)
# ----------------------------------------------------------------------
def _align64(offset: int) -> int:
    return (offset + 63) & ~63


class FileArraySource:
    """An array whose bytes live in a (temp) file, for streaming v3 writes.

    The out-of-core builder (:mod:`repro.walks.build`, DESIGN.md §15)
    appends big entry arrays to sibling temp files during its merge and
    hands them to :func:`_write_v3` as sources: the writer computes the
    same specs a materialized array would get and stream-copies the bytes
    in bounded chunks, so the assembled archive is byte-identical to a
    fully in-memory save without the array ever existing in RAM.
    """

    __slots__ = ("path", "dtype", "shape")

    def __init__(self, path: "str | Path", dtype, shape):
        self.path = Path(path)
        self.dtype = np.dtype(dtype)
        self.shape = tuple(int(dim) for dim in shape)

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return self.dtype.itemsize * count


_COPY_CHUNK = 8 << 20


def v3_index_header(
    num_nodes: int,
    length: int,
    num_replicates: int,
    encoding: str,
    engine: "str | None" = None,
    seed: "int | str | None" = None,
    gain_backend: "str | None" = None,
    graph: "Graph | None" = None,
) -> dict:
    """The v3 header dict for a flat-index archive (sans array specs).

    One constructor shared by :func:`save_index` and the incremental
    writer so the serialized JSON — and therefore the archive bytes —
    cannot depend on which build path produced the index.
    """
    return {
        "version": _V3_VERSION,
        "encoding": encoding,
        "header": [num_nodes, length, num_replicates],
        "meta": {
            "engine": engine or "",
            "seed": "" if seed is None else str(seed),
            "gain_backend": gain_backend or "",
        },
        "graph_meta": None if graph is None else [
            graph.num_nodes, graph.num_edges, graph_fingerprint(graph),
        ],
    }


def _write_v3(
    tmp_name: str,
    header: dict,
    arrays: "dict[str, np.ndarray | FileArraySource]",
) -> None:
    """Serialize a v3 container: magic | header len | JSON | aligned arrays.

    Array offsets in the header are relative to the data section, which
    starts at the first 64-byte boundary after the JSON — so the loader
    can compute every array's absolute position from the header alone
    and hand each one to ``np.memmap`` without reading the data.  Values
    may be ndarrays (written from memory) or :class:`FileArraySource`
    descriptors (stream-copied from their file); the bytes written are
    identical either way.
    """
    specs: list[dict] = []
    blobs: list = []
    offset = 0
    for name, arr in arrays.items():
        if not isinstance(arr, FileArraySource):
            arr = np.ascontiguousarray(arr)
        specs.append({
            "name": name,
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
        })
        blobs.append(arr)
        offset = _align64(offset + arr.nbytes)
    header = dict(header, arrays=specs)
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _align64(len(_V3_MAGIC) + 8 + len(blob))
    with open(tmp_name, "wb") as fh:
        fh.write(_V3_MAGIC)
        fh.write(struct.pack("<Q", len(blob)))
        fh.write(blob)
        for spec, arr in zip(specs, blobs):
            fh.seek(data_start + spec["offset"])
            if isinstance(arr, FileArraySource):
                _copy_file_bytes(arr, fh)
            else:
                fh.write(arr.tobytes())
        fh.truncate(data_start + offset)


def _copy_file_bytes(source: FileArraySource, dest) -> None:
    """Stream a :class:`FileArraySource`'s bytes into an open archive."""
    expected = source.nbytes
    copied = 0
    with open(source.path, "rb") as src:
        while True:
            chunk = src.read(min(_COPY_CHUNK, expected - copied))
            if not chunk:
                break
            dest.write(chunk)
            copied += len(chunk)
    if copied != expected:
        raise GraphFormatError(
            f"{source.path}: staged array holds {copied} bytes, "
            f"expected {expected} — incomplete spill?"
        )


def _atomic_write_v3(
    path: Path, header: dict, arrays: "dict[str, np.ndarray]"
) -> None:
    """:func:`_write_v3` under the same temp + rename discipline as npz."""
    tmp_name = _create_atomic_temp(path, path.suffix or ".idx3")
    try:
        _write_v3(tmp_name, header, arrays)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise


def _read_v3_header(path: Path) -> tuple[dict, int, int]:
    """``(header, data_start, file_size)`` of a v3 container.

    Truncated or malformed headers raise :class:`GraphFormatError` — the
    corruption error class (staleness stays :class:`ParameterError`).
    """
    try:
        size = os.path.getsize(path)
        with open(path, "rb") as fh:
            fh.seek(len(_V3_MAGIC))
            raw = fh.read(8)
            if len(raw) < 8:
                raise GraphFormatError(f"{path}: truncated index archive")
            (header_len,) = struct.unpack("<Q", raw)
            if len(_V3_MAGIC) + 8 + header_len > size:
                raise GraphFormatError(f"{path}: truncated index archive")
            blob = fh.read(header_len)
    except OSError as exc:
        raise GraphFormatError(f"{path}: unreadable index archive") from exc
    try:
        header = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise GraphFormatError(
            f"{path}: unreadable index archive (corrupt v3 header)"
        ) from exc
    if not isinstance(header, dict):
        raise GraphFormatError(
            f"{path}: unreadable index archive (corrupt v3 header)"
        )
    return header, _align64(len(_V3_MAGIC) + 8 + header_len), size


def _map_v3_arrays(
    path: Path, header: dict, data_start: int, size: int
) -> "dict[str, np.ndarray]":
    """Read-only memmap views of every array a v3 header declares.

    Each declared extent is checked against the file size first, so a
    truncated data section fails loudly at load rather than as a bus
    error when the missing pages are first touched.
    """
    arrays: dict[str, np.ndarray] = {}
    for spec in header.get("arrays", ()):
        try:
            name = spec["name"]
            dtype = np.dtype(str(spec["dtype"]))
            shape = tuple(int(s) for s in spec["shape"])
            offset = int(spec["offset"])
        except (KeyError, TypeError, ValueError) as exc:
            raise GraphFormatError(
                f"{path}: unreadable index archive (corrupt array table)"
            ) from exc
        count = 1
        for dim in shape:
            if dim < 0:
                raise GraphFormatError(
                    f"{path}: unreadable index archive (corrupt array table)"
                )
            count *= dim
        nbytes = dtype.itemsize * count
        if offset < 0 or data_start + offset + nbytes > size:
            raise GraphFormatError(
                f"{path}: truncated index archive (array {name!r} extends "
                "past the end of the file)"
            )
        if nbytes == 0:
            arrays[name] = np.empty(shape, dtype=dtype)
        else:
            arrays[name] = np.memmap(
                path, mode="r", dtype=dtype, shape=shape,
                offset=data_start + offset,
            )
    return arrays


def _v3_graph_meta(header: dict, path: Path) -> "dict | None":
    raw = header.get("graph_meta")
    if raw is None:
        return None
    try:
        return {
            "graph_num_nodes": int(raw[0]),
            "graph_num_edges": int(raw[1]),
            "graph_fingerprint": int(raw[2]),
        }
    except (TypeError, ValueError, IndexError) as exc:
        raise GraphFormatError(
            f"{path}: unreadable index archive (corrupt graph provenance)"
        ) from exc


def _load_v3(path: Path, graph: "Graph | None") -> FlatWalkIndex:
    header, data_start, size = _read_v3_header(path)
    try:
        version = int(header["version"])
        encoding = str(header["encoding"])
        num_nodes, length, num_replicates = (int(v) for v in header["header"])
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphFormatError(
            f"{path}: not a walk-index archive (missing v3 header fields)"
        ) from exc
    if version != _V3_VERSION:
        raise GraphFormatError(
            f"{path}: unsupported index format version {version}"
        )
    if encoding not in ("dense", "compressed"):
        raise GraphFormatError(
            f"{path}: unsupported v3 encoding {encoding!r}"
        )
    arrays = _map_v3_arrays(path, header, data_start, size)
    if obs.enabled():
        obs.inc(
            "persistence_bytes_mapped_total",
            sum(
                a.nbytes for a in arrays.values() if isinstance(a, np.memmap)
            ),
            help="Index bytes exposed as read-only memory maps.",
        )
    required = (
        {"indptr", "state", "hop"}
        if encoding == "dense"
        else {
            "indptr", "heads", "delta_widths", "delta_words",
            "delta_wordptr", "hop_words", "hop_wordptr",
        }
    )
    missing = required - set(arrays)
    if missing:
        raise GraphFormatError(
            f"{path}: not a walk-index archive (missing {sorted(missing)})"
        )
    if graph is not None:
        _check_graph_match(
            path, graph, num_nodes, _v3_graph_meta(header, path)
        )
    indptr = arrays["indptr"]
    if encoding == "dense":
        crows = None
        if "crow_ptr" in arrays:
            try:
                crows = CompressedRows.from_arrays(
                    arrays, num_nodes, num_nodes * num_replicates
                )
            except ParameterError as exc:
                raise GraphFormatError(
                    f"{path}: inconsistent index arrays "
                    "(malformed compressed rows)"
                ) from exc
        storage = MmapStorage(
            indptr, arrays["state"], arrays["hop"],
            rows=arrays.get("rows"), source=str(path),
            compressed_rows=crows,
        )
        rows = storage.rows
        if rows is not None:
            expected_words = (num_nodes * num_replicates + 63) >> 6
            if rows.shape != (num_nodes, expected_words):
                raise GraphFormatError(
                    f"{path}: inconsistent index arrays (packed rows have "
                    f"shape {rows.shape}, expected "
                    f"{(num_nodes, expected_words)})"
                )
    else:
        if (
            arrays["delta_wordptr"].size != num_nodes + 1
            or arrays["hop_wordptr"].size != num_nodes + 1
            or arrays["heads"].size != num_nodes
            or arrays["delta_widths"].size != num_nodes
            or (num_nodes and arrays["delta_wordptr"][-1] >= arrays["delta_words"].size)
            or (num_nodes and arrays["hop_wordptr"][-1] >= arrays["hop_words"].size)
        ):
            raise GraphFormatError(f"{path}: inconsistent index arrays")
        try:
            state_dtype = np.dtype(str(header.get("state_dtype", "<i8")))
            hop_width = int(header.get("hop_width", 0))
        except (TypeError, ValueError) as exc:
            raise GraphFormatError(
                f"{path}: unreadable index archive (corrupt codec header)"
            ) from exc
        storage = CompressedStorage(
            indptr=indptr,
            heads=arrays["heads"],
            delta_widths=arrays["delta_widths"],
            delta_words=arrays["delta_words"],
            delta_wordptr=arrays["delta_wordptr"],
            hop_width=hop_width,
            hop_words=arrays["hop_words"],
            hop_wordptr=arrays["hop_wordptr"],
            state_dtype=state_dtype,
        )
    try:
        return FlatWalkIndex(
            indptr=indptr,
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
            storage=storage,
        )
    except ParameterError as exc:
        raise GraphFormatError(f"{path}: inconsistent index arrays") from exc


def save_index(
    index: FlatWalkIndex,
    path: "str | Path",
    graph: "Graph | None" = None,
    engine: "str | None" = None,
    seed: "int | str | None" = None,
    gain_backend: "str | None" = None,
    format: str = "dense",
    include_rows: "bool | None" = None,
    rows_format: "str | None" = None,
) -> Path:
    """Write a :class:`FlatWalkIndex` to ``path``.

    ``format`` selects the archive family: ``"dense"`` (default) writes
    the version-2 ``.npz``; ``"compressed"`` writes a v3 container
    holding the delta codec; ``"mmap"`` writes a v3 container holding
    the raw entry arrays at aligned offsets — the layout
    :func:`load_index` maps back without materializing — plus the
    coverage rows, so a served index never builds them either.
    ``rows_format`` picks their representation (``"dense"`` forces the
    full packed matrix, ``"compressed"`` stores roaring containers
    (DESIGN.md §16), ``"stream"`` stores none); by default dense rows
    are stored while they fit the 1 GiB row cap and compressed rows
    beyond it.  The legacy ``include_rows`` flag (``True`` force-dense,
    ``False`` omit) maps onto the same switch.

    The optional keyword metadata is provenance, identical across
    families: ``engine`` (walk backend that generated the walks),
    ``seed`` (seed material, stored as text so arbitrary-precision
    entropy survives), ``gain_backend`` (gain machinery the index was
    validated with), and ``graph`` — when given, the graph's shape and
    CSR fingerprint are stored and enforced at load time.

    The destination resolves exactly as :func:`load_index` resolves it
    (an existing literal file is overwritten in place; otherwise the
    family's suffix — ``.npz`` or ``.idx3`` — is appended when missing),
    so save/load round-trips for any path.  Every write is atomic: a
    temp file in the destination directory, renamed into place, so a
    crash mid-write never destroys a previous good archive.  Returns the
    path actually written.
    """
    started = time.perf_counter()
    with obs.span("persistence.save", format=format):
        out = _save_index_impl(
            index, path, graph, engine, seed, gain_backend, format,
            include_rows, rows_format,
        )
    if obs.enabled():
        obs.inc(
            "persistence_saves_total",
            help="Index archives written.",
            format=format,
        )
        obs.inc(
            "persistence_bytes_written_total",
            out.stat().st_size,
            help="Bytes of index archive written.",
            format=format,
        )
        obs.observe(
            "persistence_save_seconds",
            time.perf_counter() - started,
            help="Index archive write wall time.",
            format=format,
        )
    return out


def _resolve_row_mode(
    num_nodes: int,
    num_states: int,
    include_rows: "bool | None",
    rows_format: "str | None",
) -> str:
    """Which row representation a ``mmap`` archive stores.

    ``rows_format`` wins (``"dense"`` forces the full matrix past any
    cap, ``"compressed"`` stores roaring containers, ``"stream"`` stores
    none); the legacy ``include_rows`` flag maps onto dense/stream; auto
    stores dense rows while they fit
    :data:`~repro.walks.rows.DEFAULT_ROW_CAP_BYTES` and compressed rows
    beyond it — the cap is the dense/compressed crossover, not a wall.
    Pure size arithmetic, so the in-memory saver and the out-of-core
    archive writer (:mod:`repro.walks.build`) resolve identically and
    their archives stay byte-identical.
    """
    if rows_format is not None:
        if include_rows is not None:
            raise ParameterError(
                "pass include_rows or rows_format, not both"
            )
        return validate_rows_format(rows_format)
    if include_rows is not None:
        return "dense" if include_rows else "stream"
    words = (num_states + 63) >> 6
    dense_bytes = num_nodes * words * 8
    return "dense" if dense_bytes <= DEFAULT_ROW_CAP_BYTES else "compressed"


def _save_index_impl(
    index, path, graph, engine, seed, gain_backend, format, include_rows,
    rows_format,
) -> Path:
    validate_index_format(format)
    if rows_format is not None and format != "mmap":
        raise ParameterError(
            "rows_format applies to mmap archives only (dense/compressed "
            "archives never store coverage rows)"
        )
    if graph is not None and graph.num_nodes != index.num_nodes:
        raise ParameterError(
            "provenance graph does not match the index node count"
        )
    if format == "dense":
        path = _resolve_archive_path(path)
        payload: dict = {
            "version": np.int64(_FORMAT_VERSION),
            "header": np.asarray(
                [index.num_nodes, index.length, index.num_replicates],
                dtype=np.int64,
            ),
            "indptr": np.asarray(index.indptr),
            "state": np.asarray(index.state),
            "hop": np.asarray(index.hop),
            "meta_engine": np.str_(engine or ""),
            "meta_seed": np.str_("" if seed is None else str(seed)),
            "meta_gain_backend": np.str_(gain_backend or ""),
        }
        if graph is not None:
            payload["graph_meta"] = np.asarray(
                [graph.num_nodes, graph.num_edges, graph_fingerprint(graph)],
                dtype=np.int64,
            )
        _atomic_savez(path, payload)
        return path

    path = _resolve_archive_path(path, default_suffix=".idx3")
    header = v3_index_header(
        index.num_nodes, index.length, index.num_replicates,
        encoding="compressed" if format == "compressed" else "dense",
        engine=engine, seed=seed, gain_backend=gain_backend, graph=graph,
    )
    if format == "compressed":
        comp = (
            index.storage
            if index.storage_format == "compressed"
            else CompressedStorage.from_arrays(
                index.indptr, index.state, index.hop
            )
        )
        header["state_dtype"] = comp.state_dtype.str
        header["hop_width"] = comp.hop_width
        arrays = {"indptr": index.indptr, **comp.arrays()}
    else:  # mmap: raw dense arrays, memmap-ready
        state = np.asarray(index.state)
        hop = np.asarray(index.hop)
        header["state_dtype"] = state.dtype.str
        arrays = {"indptr": index.indptr, "state": state, "hop": hop}
        mode = _resolve_row_mode(
            index.num_nodes, index.num_states, include_rows, rows_format
        )
        if mode == "dense":
            arrays["rows"] = index.packed_hit_rows(
                include_self=True, max_bytes=None
            )
        elif mode == "compressed":
            arrays.update(
                index.compressed_hit_rows(include_self=True).arrays()
            )
    _atomic_write_v3(path, header, arrays)
    return path


def _read_graph_meta(archive) -> "dict | None":
    if "graph_meta" not in archive.files:
        return None
    raw = archive["graph_meta"]
    return {
        "graph_num_nodes": int(raw[0]),
        "graph_num_edges": int(raw[1]),
        "graph_fingerprint": int(raw[2]),
    }


def load_index(
    path: "str | Path", graph: "Graph | None" = None
) -> FlatWalkIndex:
    """Read a :class:`FlatWalkIndex` written by :func:`save_index`.

    Validates the version stamp and the structural invariants (indptr
    monotone and consistent with the entry arrays) so a truncated or
    foreign file fails loudly instead of corrupting a selection run.

    Pass the ``graph`` the index is about to be used with to also enforce
    freshness: a node-count mismatch always raises
    :class:`ParameterError`, and for archives carrying graph provenance
    (version 2 and 3), an edge-count or adjacency-fingerprint mismatch
    (a stale index for an edited graph) raises too.

    Accepts the same suffixless paths :func:`save_index` does: when the
    literal path does not exist, the ``.npz``- then ``.idx3``-suffixed
    names are tried.  The family is sniffed from the magic bytes, never
    the suffix: v3 containers load as memory maps (O(metadata) — see the
    module docstring), npz archives load eagerly as before.
    """
    started = time.perf_counter()
    with obs.span("persistence.load", path=str(path)):
        index = _load_index_impl(path, graph)
    if obs.enabled():
        fmt = index.storage_format
        obs.inc(
            "persistence_loads_total",
            help="Index archives loaded.",
            format=fmt,
        )
        obs.observe(
            "persistence_load_seconds",
            time.perf_counter() - started,
            help="Index archive load wall time.",
            format=fmt,
        )
    return index


def _load_index_impl(
    path: "str | Path", graph: "Graph | None" = None
) -> FlatWalkIndex:
    path = _resolve_load_path(path)
    if path.is_file() and _sniff_is_v3(path):
        return _load_v3(path, graph)
    try:
        with np.load(path) as archive:
            missing = {"version", "header", "indptr", "state", "hop"} - set(
                archive.files
            )
            if missing:
                raise GraphFormatError(
                    f"{path}: not a walk-index archive (missing {sorted(missing)})"
                )
            version = int(archive["version"])
            if version not in _READABLE_VERSIONS:
                raise GraphFormatError(
                    f"{path}: unsupported index format version {version}"
                )
            header = archive["header"]
            num_nodes, length, num_replicates = (int(v) for v in header)
            indptr = archive["indptr"]
            state = archive["state"]
            hop = archive["hop"]
            graph_meta = _read_graph_meta(archive)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable index archive") from exc
    if obs.enabled():
        obs.inc(
            "persistence_bytes_materialized_total",
            indptr.nbytes + state.nbytes + hop.nbytes,
            help="Index bytes loaded eagerly into memory.",
        )
    if graph is not None:
        _check_graph_match(path, graph, num_nodes, graph_meta)
    try:
        return FlatWalkIndex(
            indptr=indptr,
            state=state,
            hop=hop,
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
        )
    except ParameterError as exc:
        raise GraphFormatError(f"{path}: inconsistent index arrays") from exc


def index_provenance(path: "str | Path") -> dict:
    """Provenance metadata of a saved index (empty strings when absent).

    Returns ``version``, ``engine``, ``seed`` (text), ``gain_backend``,
    and — when the archive carries graph provenance —
    ``graph_num_nodes`` / ``graph_num_edges`` / ``graph_fingerprint``.
    v3 archives additionally report ``encoding``
    (``"dense"``/``"compressed"``).
    """
    path = _resolve_load_path(path)
    if path.is_file() and _sniff_is_v3(path):
        header, _, _ = _read_v3_header(path)
        meta = header.get("meta") or {}
        info = {
            "version": int(header.get("version", _V3_VERSION)),
            "encoding": str(header.get("encoding", "")),
            "engine": str(meta.get("engine", "")),
            "seed": str(meta.get("seed", "")),
            "gain_backend": str(meta.get("gain_backend", "")),
        }
        graph_meta = _v3_graph_meta(header, path)
        if graph_meta is not None:
            info.update(graph_meta)
        return info
    try:
        with np.load(path) as archive:
            if "version" not in archive.files:
                raise GraphFormatError(f"{path}: not a walk-index archive")
            info = {
                "version": int(archive["version"]),
                "engine": str(archive["meta_engine"])
                if "meta_engine" in archive.files
                else "",
                "seed": str(archive["meta_seed"])
                if "meta_seed" in archive.files
                else "",
                "gain_backend": str(archive["meta_gain_backend"])
                if "meta_gain_backend" in archive.files
                else "",
            }
            meta = _read_graph_meta(archive)
            if meta is not None:
                info.update(meta)
            return info
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable index archive") from exc


def as_format(
    index: FlatWalkIndex,
    format: str,
    graph: "Graph | None" = None,
) -> FlatWalkIndex:
    """``index`` on the requested storage backend (a no-op when it already
    is).

    ``"dense"`` materializes, ``"compressed"`` encodes in memory, and
    ``"mmap"`` spills a v3 archive to a temporary file, maps it back,
    and unlinks the name — the maps keep the inode alive (POSIX), so the
    caller gets a disk-backed index with no path to manage and the pages
    drop with the last reference.  Entries and every derived selection
    are bit-identical across formats.  ``graph`` is optional provenance
    for the spilled archive (it is checked on the immediate reload, so a
    mismatched graph fails here rather than at first query).
    """
    validate_index_format(format)
    if format == index.storage_format:
        return index
    if format == "dense":
        return index.densify()
    if format == "compressed":
        return index.compress()
    fd, tmp_name = tempfile.mkstemp(suffix=".idx3", prefix="rwdom-index-")
    os.close(fd)
    try:
        save_index(index, tmp_name, graph=graph, format="mmap")
        loaded = load_index(tmp_name, graph=graph)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:  # pragma: no cover - best-effort cleanup
            pass
        raise
    try:
        os.unlink(tmp_name)
    except OSError:  # pragma: no cover - non-POSIX fallback: leak the temp
        pass
    return loaded


# ----------------------------------------------------------------------
# Journal-aware dynamic snapshots
# ----------------------------------------------------------------------
def save_dynamic_index(index: "DynamicWalkIndex", path: "str | Path") -> Path:
    """Persist a :class:`~repro.dynamic.index.DynamicWalkIndex` snapshot.

    Stores everything incremental maintenance needs to resume: the graph
    CSR at the index's epoch, the trajectories, the canonical entry
    arrays, the seed material / engine provenance, and the epoch itself.
    The frozen uniform stream is *not* stored — it regenerates
    deterministically from the seed material.  Suffix handling and
    atomicity follow :func:`save_index`: the snapshot lands at a
    ``*.npz`` path (returned) via a same-directory temp file and
    ``os.replace``.
    """
    path = _resolve_archive_path(path)
    graph = index.graph
    _atomic_savez(path, {
        "dynamic_version": np.int64(_DYNAMIC_FORMAT_VERSION),
        "header": np.asarray(
            [
                index.num_nodes,
                index.length,
                index.num_replicates,
                index.epoch,
                index.num_shards,
            ],
            dtype=np.int64,
        ),
        "indptr": index.flat.indptr,
        "state": index.flat.state,
        "hop": index.flat.hop,
        "walks": index.walks,
        "graph_indptr": graph.indptr,
        "graph_indices": graph.indices,
        "meta_engine": np.str_(index.engine_name),
        "meta_seed": np.str_(str(index.seed_entropy)),
    })
    return path


def load_dynamic_index(
    path: "str | Path", graph: "Graph | None" = None
) -> "DynamicWalkIndex":
    """Reload a snapshot written by :func:`save_dynamic_index`.

    The snapshot carries its own graph (the snapshot-epoch topology);
    pass ``graph`` to additionally assert it matches — a mismatch raises
    :class:`ParameterError`, the stale-index guard for callers that load
    a snapshot against what they believe is the same graph.
    """
    from repro.dynamic.index import DynamicWalkIndex

    path = _resolve_archive_path(path)
    required = {
        "dynamic_version", "header", "indptr", "state", "hop",
        "walks", "graph_indptr", "graph_indices", "meta_engine", "meta_seed",
    }
    try:
        with np.load(path) as archive:
            missing = required - set(archive.files)
            if missing:
                raise GraphFormatError(
                    f"{path}: not a dynamic-index snapshot "
                    f"(missing {sorted(missing)})"
                )
            version = int(archive["dynamic_version"])
            if version != _DYNAMIC_FORMAT_VERSION:
                raise GraphFormatError(
                    f"{path}: unsupported dynamic snapshot version {version}"
                )
            header = archive["header"]
            num_nodes, length, num_replicates, epoch, num_shards = (
                int(v) for v in header
            )
            indptr = archive["indptr"]
            state = archive["state"]
            hop = archive["hop"]
            walks = archive["walks"]
            snapshot_graph = Graph(
                archive["graph_indptr"], archive["graph_indices"]
            )
            engine_name = str(archive["meta_engine"])
            entropy = int(str(archive["meta_seed"]))
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise GraphFormatError(f"{path}: unreadable dynamic snapshot") from exc
    if graph is not None and (
        graph.num_nodes != snapshot_graph.num_nodes
        or graph_fingerprint(graph) != graph_fingerprint(snapshot_graph)
    ):
        raise ParameterError(
            f"{path}: snapshot graph does not match the supplied graph "
            "(the snapshot was taken at a different epoch or on a "
            "different graph)"
        )
    try:
        flat = FlatWalkIndex(
            indptr=indptr,
            state=state,
            hop=hop,
            num_nodes=num_nodes,
            length=length,
            num_replicates=num_replicates,
        )
        if walks.shape != (num_nodes * num_replicates, length + 1):
            raise ParameterError("walk matrix shape mismatch")
    except ParameterError as exc:
        raise GraphFormatError(f"{path}: inconsistent snapshot arrays") from exc
    return DynamicWalkIndex(
        graph=snapshot_graph,
        flat=flat,
        walks=np.ascontiguousarray(walks),
        seed_entropy=entropy,
        engine_name=engine_name,
        num_shards=num_shards,
        epoch=epoch,
    )
